/**
 * @file
 * Performance microbenchmarks for the serving layer
 * (google-benchmark): streaming-session throughput at several chunk
 * sizes (synchronous and buffered staging), the request wire codec,
 * and a loopback load generator for the event-driven multiplexed
 * frontend (BM_MuxLoadGen) publishing p50/p99 chunk latency.
 * BM_RecorderOverhead A/Bs the serve path with and without a disabled
 * flight recorder attached and publishes recorder_overhead_pct.
 * Throughput numbers, not paper results.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "mem/wire.hpp"
#include "serve/client.hpp"
#include "serve/profile_store.hpp"
#include "serve/recorder.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/codec.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;

std::shared_ptr<const serve::StoredProfile>
storedProfile()
{
    static const std::shared_ptr<const serve::StoredProfile> stored =
        [] {
            auto s = std::make_shared<serve::StoredProfile>();
            s->id = "bench";
            s->profile = core::buildProfile(
                workloads::deviceTraces().front().make(60000, 1),
                core::PartitionConfig::twoLevelTs(500000));
            s->totalRequests = s->profile.totalRequests();
            return s;
        }();
    return stored;
}

/** Drain one whole session in next() calls of the given chunk size. */
void
BM_SessionStream(benchmark::State &state)
{
    const auto stored = storedProfile();
    const std::size_t chunk =
        static_cast<std::size_t>(state.range(0));
    const std::size_t buffer =
        static_cast<std::size_t>(state.range(1));
    std::uint64_t streamed = 0;
    for (auto _ : state) {
        serve::SessionOptions options;
        options.seed = 1;
        options.bufferCapacity = buffer;
        serve::SynthesisSession session(stored, options);
        std::vector<mem::Request> out;
        while (!session.done()) {
            out.clear();
            if (session.next(out, chunk) == 0)
                break;
            benchmark::DoNotOptimize(out.data());
        }
        streamed += session.emitted();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(streamed));
}
BENCHMARK(BM_SessionStream)
    ->ArgNames({"chunk", "buffer"})
    ->Args({64, 0})
    ->Args({4096, 0})
    ->Args({65536, 0})
    ->Args({4096, 8192})
    ->Unit(benchmark::kMillisecond);

/** The serve wire codec: requests -> bytes -> requests. */
void
BM_RequestWireCodec(benchmark::State &state)
{
    const mem::Trace trace = core::synthesize(storedProfile()->profile);
    const std::size_t chunk =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        mem::RequestCodecState encode_state;
        util::ByteWriter w;
        for (std::size_t i = 0; i < trace.size(); i += chunk) {
            const std::size_t count =
                std::min(chunk, trace.size() - i);
            mem::encodeRequests(w, trace.requests().data() + i, count,
                                encode_state);
        }
        mem::RequestCodecState decode_state;
        util::ByteReader r(w.bytes().data(), w.bytes().size());
        std::vector<mem::Request> decoded;
        decoded.reserve(trace.size());
        const bool ok = mem::decodeRequests(r, trace.size(), decoded,
                                            decode_state);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(decoded.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RequestWireCodec)
    ->ArgName("chunk")
    ->Arg(64)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/**
 * Loopback load generator for the event-driven frontend: `conns`
 * MuxClient connections, each multiplexing `chans` concurrent
 * streaming sessions (so conns*chans sessions total — the {8, 128}
 * shape is 1024). Every chunk's pull-to-arrival latency is sampled;
 * p50/p99 land in the benchmark counters (and the BENCH json via
 * --json).
 */
void
BM_MuxLoadGen(benchmark::State &state)
{
    const unsigned conns = static_cast<unsigned>(state.range(0));
    const unsigned chans = static_cast<unsigned>(state.range(1));
    constexpr std::uint64_t kChunk = 512;
    constexpr std::uint64_t kPullDepth = 2;

    serve::ProfileStore store;
    store.insert("bench",
                 core::buildProfile(
                     workloads::deviceTraces().front().make(60000, 1),
                     core::PartitionConfig::twoLevelTs(500000)));
    serve::StreamServer server(store);
    std::string error;
    if (!server.start(&error)) {
        state.SkipWithError(error.c_str());
        return;
    }

    std::uint64_t streamed = 0;
    std::vector<double> latencies_us;
    for (auto _ : state) {
        std::atomic<std::uint64_t> total{0};
        std::atomic<bool> failed{false};
        std::vector<std::vector<double>> samples(conns);
        std::vector<std::thread> drivers;
        drivers.reserve(conns);
        for (unsigned c = 0; c < conns; ++c) {
            drivers.emplace_back([&, c] {
                using Clock = std::chrono::steady_clock;
                serve::MuxClient client;
                std::string err;
                if (!client.connect("127.0.0.1", server.port(), {},
                                    &err)) {
                    failed = true;
                    return;
                }
                // Open all channels, then keep kPullDepth pulls in
                // flight per channel, timing each pull->chunk pair.
                std::vector<std::vector<mem::Request>> sinks(chans);
                for (unsigned ch = 1; ch <= chans; ++ch) {
                    if (!client.openChannel(ch, "bench",
                                            1000 + c * chans + ch,
                                            &err)) {
                        failed = true;
                        return;
                    }
                    client.setSink(ch, &sinks[ch - 1]);
                }
                std::vector<std::deque<Clock::time_point>> pending(
                    chans + 1);
                unsigned live = chans;
                std::uint64_t got = 0;
                while (live > 0 && !failed) {
                    serve::MuxClient::Event event;
                    if (!client.nextEvent(event, &err)) {
                        failed = true;
                        return;
                    }
                    const serve::MuxClient::Channel *channel =
                        client.channel(event.channel);
                    switch (event.kind) {
                    case serve::MuxClient::Event::Kind::Opened:
                    case serve::MuxClient::Event::Kind::Chunk: {
                        if (event.kind ==
                            serve::MuxClient::Event::Kind::Chunk) {
                            const auto now = Clock::now();
                            auto &q = pending[event.channel];
                            if (!q.empty()) {
                                samples[c].push_back(
                                    std::chrono::duration<
                                        double, std::micro>(now -
                                                            q.front())
                                        .count());
                                q.pop_front();
                            }
                            got += event.count;
                        }
                        if (channel->done) {
                            if (channel->pullsOutstanding == 0 &&
                                !channel->closed &&
                                !client.closeChannel(event.channel,
                                                     &err))
                                failed = true;
                            break;
                        }
                        while (channel->pullsOutstanding <
                               kPullDepth) {
                            pending[event.channel].push_back(
                                Clock::now());
                            if (!client.pull(event.channel, kChunk,
                                             &err)) {
                                failed = true;
                                return;
                            }
                        }
                        break;
                    }
                    case serve::MuxClient::Event::Kind::Closed:
                        --live;
                        break;
                    case serve::MuxClient::Event::Kind::ChannelError:
                        failed = true;
                        return;
                    }
                }
                total.fetch_add(got, std::memory_order_relaxed);
            });
        }
        for (std::thread &t : drivers)
            t.join();
        if (failed) {
            state.SkipWithError("load generator failed");
            break;
        }
        streamed += total.load();
        for (const std::vector<double> &s : samples)
            latencies_us.insert(latencies_us.end(), s.begin(),
                                s.end());
    }
    server.stop();

    if (!latencies_us.empty()) {
        std::sort(latencies_us.begin(), latencies_us.end());
        const auto pct = [&](double p) {
            const std::size_t idx = static_cast<std::size_t>(
                p * static_cast<double>(latencies_us.size() - 1));
            return latencies_us[idx];
        };
        state.counters["p50_chunk_us"] = pct(0.50);
        state.counters["p99_chunk_us"] = pct(0.99);
    }
    state.counters["sessions"] =
        static_cast<double>(conns) * static_cast<double>(chans);
    state.SetItemsProcessed(static_cast<std::int64_t>(streamed));
}
BENCHMARK(BM_MuxLoadGen)
    ->ArgNames({"conns", "chans"})
    ->Args({4, 16})
    ->Args({8, 128}) // 1024 concurrent streaming sessions
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * A/B cost of a flight recorder that is attached to the server but
 * never opened: every iteration drives the same strict-cycle fetch
 * loop (many small round trips, so the per-frame record() check
 * dominates) against a bare server and against one carrying a
 * disabled ServeRecorder, interleaved to cancel drift. The
 * `recorder_overhead_pct` counter is the relative wall-clock cost of
 * the attached-but-disabled path — the guard the recorder's
 * "off means off" promise is held to (< 1%, noise allowing).
 */
void
BM_RecorderOverhead(benchmark::State &state)
{
    using Clock = std::chrono::steady_clock;
    constexpr std::uint64_t kChunk = 64;
    constexpr unsigned kFetches = 96;

    serve::ProfileStore bare_store;
    bare_store.insert("bench",
                      core::buildProfile(
                          workloads::deviceTraces().front().make(60000,
                                                                 1),
                          core::PartitionConfig::twoLevelTs(500000)));
    serve::StreamServer bare(bare_store);

    serve::ServeRecorder recorder; // attached, never open()ed
    serve::ProfileStore recorded_store;
    recorded_store.insert(
        "bench",
        core::buildProfile(
            workloads::deviceTraces().front().make(60000, 1),
            core::PartitionConfig::twoLevelTs(500000)));
    serve::ServerOptions recorded_options;
    recorded_options.recorder = &recorder;
    serve::StreamServer recorded(recorded_store, recorded_options);

    std::string error;
    if (!bare.start(&error) || !recorded.start(&error)) {
        state.SkipWithError(error.c_str());
        return;
    }

    const auto drain = [&](std::uint16_t port, double &seconds,
                           std::uint64_t &streamed) -> bool {
        serve::Client client;
        std::string err;
        const auto t0 = Clock::now();
        if (!client.connect("127.0.0.1", port, {}, &err))
            return false;
        serve::RemoteSession session;
        if (!client.open("bench", 7, session, &err))
            return false;
        std::vector<mem::Request> out;
        for (unsigned i = 0; i < kFetches; ++i) {
            if (!client.fetch(session, out, kChunk, &err))
                return false;
            benchmark::DoNotOptimize(out.data());
            streamed += out.size();
        }
        if (!client.close(session, &err))
            return false;
        client.disconnect();
        seconds +=
            std::chrono::duration<double>(Clock::now() - t0).count();
        return true;
    };

    double bare_s = 0.0;
    double recorded_s = 0.0;
    std::uint64_t streamed = 0;
    for (auto _ : state) {
        if (!drain(bare.port(), bare_s, streamed) ||
            !drain(recorded.port(), recorded_s, streamed)) {
            state.SkipWithError("loopback fetch failed");
            break;
        }
    }
    bare.stop();
    recorded.stop();

    if (bare_s > 0.0)
        state.counters["recorder_overhead_pct"] =
            (recorded_s - bare_s) / bare_s * 100.0;
    // The disabled recorder must not have captured anything.
    if (recorder.frames() != 0)
        state.SkipWithError("disabled recorder recorded frames");
    state.SetItemsProcessed(static_cast<std::int64_t>(streamed));
}
BENCHMARK(BM_RecorderOverhead)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
