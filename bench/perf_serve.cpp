/**
 * @file
 * Performance microbenchmarks for the serving layer
 * (google-benchmark): streaming-session throughput at several chunk
 * sizes (synchronous and buffered staging) and the request wire codec.
 * Throughput numbers, not paper results.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "mem/wire.hpp"
#include "serve/profile_store.hpp"
#include "serve/session.hpp"
#include "util/codec.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;

std::shared_ptr<const serve::StoredProfile>
storedProfile()
{
    static const std::shared_ptr<const serve::StoredProfile> stored =
        [] {
            auto s = std::make_shared<serve::StoredProfile>();
            s->id = "bench";
            s->profile = core::buildProfile(
                workloads::deviceTraces().front().make(60000, 1),
                core::PartitionConfig::twoLevelTs(500000));
            s->totalRequests = s->profile.totalRequests();
            return s;
        }();
    return stored;
}

/** Drain one whole session in next() calls of the given chunk size. */
void
BM_SessionStream(benchmark::State &state)
{
    const auto stored = storedProfile();
    const std::size_t chunk =
        static_cast<std::size_t>(state.range(0));
    const std::size_t buffer =
        static_cast<std::size_t>(state.range(1));
    std::uint64_t streamed = 0;
    for (auto _ : state) {
        serve::SessionOptions options;
        options.seed = 1;
        options.bufferCapacity = buffer;
        serve::SynthesisSession session(stored, options);
        std::vector<mem::Request> out;
        while (!session.done()) {
            out.clear();
            if (session.next(out, chunk) == 0)
                break;
            benchmark::DoNotOptimize(out.data());
        }
        streamed += session.emitted();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(streamed));
}
BENCHMARK(BM_SessionStream)
    ->ArgNames({"chunk", "buffer"})
    ->Args({64, 0})
    ->Args({4096, 0})
    ->Args({65536, 0})
    ->Args({4096, 8192})
    ->Unit(benchmark::kMillisecond);

/** The serve wire codec: requests -> bytes -> requests. */
void
BM_RequestWireCodec(benchmark::State &state)
{
    const mem::Trace trace = core::synthesize(storedProfile()->profile);
    const std::size_t chunk =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        mem::RequestCodecState encode_state;
        util::ByteWriter w;
        for (std::size_t i = 0; i < trace.size(); i += chunk) {
            const std::size_t count =
                std::min(chunk, trace.size() - i);
            mem::encodeRequests(w, trace.requests().data() + i, count,
                                encode_state);
        }
        mem::RequestCodecState decode_state;
        util::ByteReader r(w.bytes().data(), w.bytes().size());
        std::vector<mem::Request> decoded;
        decoded.reserve(trace.size());
        const bool ok = mem::decodeRequests(r, trace.size(), decoded,
                                            decode_state);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(decoded.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RequestWireCodec)
    ->ArgName("chunk")
    ->Arg(64)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

} // namespace
