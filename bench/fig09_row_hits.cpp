/**
 * @file
 * Fig. 9: average error for read and write row hits per device class,
 * 2L-TS (McC) vs 2L-TS (STM).
 *
 * Expected shape: McC more accurate than STM overall — dynamic
 * spatial partitioning reduces stride variance so first-order chains
 * suffice, while STM's single-probability operation model scrambles
 * read/write order and degrades row locality (paper: read row hits
 * <= 7.3% error, write row hits <= 2.8% for McC).
 */

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 9",
           "Average error for read and write row hits per device");

    std::printf("%-8s %12s %12s %12s %12s\n", "device", "rdHit-McC%",
                "rdHit-STM%", "wrHit-McC%", "wrHit-STM%");

    double sum_mcc = 0.0, sum_stm = 0.0;
    for (const auto &device : deviceClasses()) {
        std::vector<double> rd_mcc, rd_stm, wr_mcc, wr_stm;
        for (const auto &name : tracesForDevice(device)) {
            const mem::Trace trace =
                workloads::makeDeviceTrace(name, traceLength(), 1);
            const auto cmp = compareModels(trace);
            rd_mcc.push_back(err(
                static_cast<double>(cmp.mcc.readRowHits()),
                static_cast<double>(cmp.baseline.readRowHits())));
            rd_stm.push_back(err(
                static_cast<double>(cmp.stm.readRowHits()),
                static_cast<double>(cmp.baseline.readRowHits())));
            wr_mcc.push_back(err(
                static_cast<double>(cmp.mcc.writeRowHits()),
                static_cast<double>(cmp.baseline.writeRowHits())));
            wr_stm.push_back(err(
                static_cast<double>(cmp.stm.writeRowHits()),
                static_cast<double>(cmp.baseline.writeRowHits())));
        }
        const double g_rd_mcc = util::geometricMean(rd_mcc);
        const double g_rd_stm = util::geometricMean(rd_stm);
        const double g_wr_mcc = util::geometricMean(wr_mcc);
        const double g_wr_stm = util::geometricMean(wr_stm);
        std::printf("%-8s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                    device.c_str(), g_rd_mcc, g_rd_stm, g_wr_mcc,
                    g_wr_stm);
        sum_mcc += g_rd_mcc + g_wr_mcc;
        sum_stm += g_rd_stm + g_wr_stm;
    }

    std::printf("\n");
    shapeCheck("McC is more accurate than STM on row hits overall",
               sum_mcc <= sum_stm);
    shapeCheck("McC row-hit errors stay moderate (< 20% per device)",
               sum_mcc / 8.0 < 20.0);
    return 0;
}
