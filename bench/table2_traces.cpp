/**
 * @file
 * Table II: the trace inventory — name, device and description — plus
 * summary statistics of each synthetic substitute.
 */

#include "common.hpp"
#include "mem/burstiness.hpp"
#include "mem/trace_stats.hpp"

int
main()
{
    using namespace bench;
    banner("Table II", "Proprietary traces (synthetic substitutes)");

    std::printf("%-12s %-6s %-50s %8s %7s %7s %8s\n", "Name", "Device",
                "Description", "requests", "reads%", "bursty",
                "active%");
    for (const auto &spec : workloads::deviceTraces()) {
        const mem::Trace trace = spec.make(traceLength() / 4, 1);
        const auto stats = mem::computeStats(trace);
        const auto bursts = mem::analyzeBurstiness(trace, 10000);
        std::printf("%-12s %-6s %-50s %8zu %6.1f%% %7.2f %7.1f%%\n",
                    spec.name.c_str(), spec.device.c_str(),
                    spec.description.c_str(), trace.size(),
                    100.0 * stats.readFraction(), bursts.coefficient,
                    100.0 * bursts.activeFraction);
    }

    std::printf("\n");
    shapeCheck("18 traces across CPU, DPU, GPU and VPU devices",
               workloads::deviceTraces().size() == 18);
    return 0;
}
