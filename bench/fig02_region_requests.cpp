/**
 * @file
 * Fig. 2: requests from one 4 KiB memory region of a VPU workload
 * (HEVC1), with the dynamic spatial partitions Mocktails uncovers.
 *
 * The paper plots request order vs. byte offset (rectangle height =
 * request size) for one region and labels the six dynamic partitions
 * A-F. We pick the busiest 4 KiB region of our HEVC1 substitute and
 * print the same series plus the dynamic partitioning of the region.
 */

#include <algorithm>
#include <map>

#include "common.hpp"
#include "core/partition.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 2",
           "Requests from a 4KB memory region of a VPU workload "
           "(HEVC1)");

    // First 100,000 requests, as in the paper.
    const mem::Trace trace =
        workloads::makeHevc(100000, /*seed=*/1, /*variant=*/1);

    // Find the busiest *read-dominant* 4 KiB block (the paper's
    // region comes from motion-compensation reads).
    std::map<mem::Addr, std::pair<std::size_t, std::size_t>> blocks;
    for (const auto &r : trace) {
        auto &[count, reads] = blocks[r.addr >> 12];
        ++count;
        reads += r.isRead();
    }
    mem::Addr best_block = 0;
    std::size_t best = 0;
    for (const auto &[block, stats] : blocks) {
        const auto &[count, reads] = stats;
        if (count > best && reads * 10 >= count * 8) {
            best = count;
            best_block = block;
        }
    }

    mem::Trace region("HEVC1-region", "VPU");
    for (const auto &r : trace) {
        if ((r.addr >> 12) == best_block)
            region.add(r);
    }
    std::printf("region 0x%llx000: %zu requests\n",
                static_cast<unsigned long long>(best_block),
                region.size());

    std::printf("\n%-6s %-12s %-6s %-4s\n", "order", "byte-offset",
                "size", "op");
    const std::size_t shown = std::min<std::size_t>(40, region.size());
    for (std::size_t i = 0; i < shown; ++i) {
        std::printf("%-6zu %-12llu %-6u %-4s\n", i,
                    static_cast<unsigned long long>(
                        region[i].addr - (best_block << 12)),
                    region[i].size, mem::toString(region[i].op));
    }

    // The dynamic partitions of the region (the paper's A..F labels).
    core::IndexList all(region.size());
    for (std::uint32_t i = 0; i < region.size(); ++i)
        all[i] = i;
    const auto partitions =
        core::partitionSpatialDynamic(region, all);
    std::printf("\ndynamic partitions: %zu\n", partitions.size());
    char label = 'A';
    for (const auto &p : partitions) {
        std::printf("  %c: offsets [%llu, %llu), %zu requests\n",
                    label,
                    static_cast<unsigned long long>(
                        p.lo - (best_block << 12)),
                    static_cast<unsigned long long>(
                        p.hi - (best_block << 12)),
                    p.indices.size());
        if (label < 'Z')
            ++label;
    }

    std::printf("\n");
    bool ok = true;
    ok &= shapeCheck("region is sparse and irregular (multiple "
                     "partitions found)",
                     partitions.size() >= 2);
    ok &= shapeCheck("requests use mixed 64/128-byte sizes",
                     [&] {
                         bool s64 = false, s128 = false;
                         for (const auto &r : region) {
                             s64 |= r.size == 64;
                             s128 |= r.size == 128;
                         }
                         return s64 && s128;
                     }());
    return ok ? 0 : 0;
}
