/**
 * @file
 * Performance microbenchmarks for the scenario subsystem
 * (google-benchmark): merged-stream build throughput (device stream
 * synthesis + k-way merge) and the full contended SoC run, publishing
 * each device's p50/p99 injection-to-completion read latency as
 * benchmark counters (and in the BENCH json via --json).
 * Throughput numbers, not paper results.
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdlib>
#include <string>

#include "mem/trace.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"

namespace
{

using namespace mocktails;

/**
 * A generator-only mix (no files to load): CPU, GPU, video decoder and
 * a DMA engine on four ports, scaled by a per-device request count.
 */
scenario::ScenarioSpec
benchSpec(std::uint64_t requests_per_device)
{
    const std::string text =
        "name = \"bench\"\n"
        "seed = 1\n"
        "[dram]\nchannels = 4\n"
        "[device cpu]\ngenerator = \"CPU-G\"\n"
        "[device gpu]\ngenerator = \"T-Rex1\"\n"
        "[device video]\ngenerator = \"HEVC1\"\nstart = 1000\n"
        "[device dma]\ngenerator = \"DMA-Copy\"\nclock = 2\n";
    scenario::ScenarioSpec spec;
    std::string error;
    if (!scenario::parseScenario(text, "bench.scn", spec, &error))
        std::abort(); // the embedded spec is a literal; never fails
    for (scenario::DeviceSpec &d : spec.devices)
        d.requests = requests_per_device;
    return spec;
}

/** Device-stream builds plus the k-way merge, end to end. */
void
BM_ScenarioMergedStream(benchmark::State &state)
{
    const auto requests =
        static_cast<std::uint64_t>(state.range(0));
    const auto threads = static_cast<unsigned>(state.range(1));
    std::uint64_t merged_requests = 0;
    for (auto _ : state) {
        scenario::ScenarioOptions options;
        options.threads = threads;
        scenario::ScenarioEngine engine(benchSpec(requests), options);
        const mem::Trace &merged = engine.mergedStream();
        benchmark::DoNotOptimize(merged.requests().data());
        merged_requests += merged.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(merged_requests));
}
BENCHMARK(BM_ScenarioMergedStream)
    ->ArgNames({"requests", "threads"})
    ->Args({20000, 1})
    ->Args({20000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * The contended SoC run (shared crossbar + DRAM). Per-device p50/p99
 * read injection latency from the last report lands in the counters.
 */
void
BM_ScenarioContention(benchmark::State &state)
{
    const auto requests =
        static_cast<std::uint64_t>(state.range(0));
    std::uint64_t injected = 0;
    scenario::ScenarioReport report;
    for (auto _ : state) {
        scenario::ScenarioOptions options;
        options.skipIsolated = true; // measure the contended run alone
        scenario::ScenarioEngine engine(benchSpec(requests), options);
        std::string error;
        if (!engine.run(report, &error)) {
            state.SkipWithError(error.c_str());
            return;
        }
        benchmark::DoNotOptimize(report.totalRequests);
        injected += report.totalRequests;
    }
    for (const scenario::DeviceReport &device : report.devices) {
        state.counters["p50_" + device.name + "_ticks"] =
            device.readLatencyP50;
        state.counters["p99_" + device.name + "_ticks"] =
            device.readLatencyP99;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(injected));
}
BENCHMARK(BM_ScenarioContention)
    ->ArgName("requests")
    ->Arg(10000)
    ->Arg(40000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
