/**
 * @file
 * Shared main() for the perf_* google-benchmark binaries.
 *
 * Adds two convenience flags on top of the stock benchmark ones:
 *
 *   --quick        cut per-benchmark measuring time to ~0.01 s, for
 *                  CI smoke runs where trend data is enough
 *   --json <path>  write the full machine-readable report (per-bench
 *                  wall-clock, items/s and counters) to <path>;
 *                  MOCKTAILS_BENCH_JSON is honoured when the flag is
 *                  absent, so wrappers can opt in via the environment
 *
 * Everything else passes through to google-benchmark untouched, so
 * --benchmark_filter and friends keep working.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

int
main(int argc, char **argv)
{
    std::string json_path;
    if (const char *env = std::getenv("MOCKTAILS_BENCH_JSON"))
        json_path = env;

    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 2);
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            args.push_back("--benchmark_min_time=0.01");
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        } else {
            args.push_back(argv[i]);
        }
    }
    if (!json_path.empty()) {
        args.push_back("--benchmark_out=" + json_path);
        args.push_back("--benchmark_out_format=json");
    }

    std::vector<char *> c_args;
    c_args.reserve(args.size());
    for (std::string &arg : args)
        c_args.push_back(arg.data());
    int c_argc = static_cast<int>(c_args.size());

    benchmark::Initialize(&c_argc, c_args.data());
    if (benchmark::ReportUnrecognizedArguments(c_argc, c_args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
