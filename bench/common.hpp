/**
 * @file
 * Shared machinery for the paper-experiment benches.
 *
 * Every figNN/tableN binary regenerates one table or figure of the
 * paper: it builds the Table II (or SPEC) workloads, models them with
 * 2L-TS (McC) and 2L-TS (STM), replays baseline and synthetic streams
 * through the DRAM or cache substrate, and prints the series the
 * paper plots. Shape checks assert the qualitative result (who wins,
 * rough magnitudes) rather than absolute numbers — the substrate is a
 * simulator, not the authors' RTL platform.
 */

#ifndef MOCKTAILS_BENCH_COMMON_HPP
#define MOCKTAILS_BENCH_COMMON_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/stm.hpp"
#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "mem/trace.hpp"
#include "util/stats.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace bench
{

using namespace mocktails;

/** Requests per device trace (override: MOCKTAILS_BENCH_REQUESTS). */
std::size_t traceLength();

/** The four device classes in paper order. */
const std::vector<std::string> &deviceClasses();

/** Table II trace names belonging to one device class. */
std::vector<std::string> tracesForDevice(const std::string &device);

/**
 * Baseline + two model configurations run on the DRAM platform.
 */
struct ModelComparison
{
    dram::SimulationResult baseline;
    dram::SimulationResult mcc; ///< 2L-TS (McC)
    dram::SimulationResult stm; ///< 2L-TS (STM)
};

/**
 * Build profiles for @p trace with McC and STM leaf models, replay
 * everything on the Table III DRAM platform.
 */
ModelComparison
compareModels(const mem::Trace &trace,
              const core::PartitionConfig &config =
                  core::PartitionConfig::twoLevelTs(),
              const dram::DramConfig &dram_config = dram::DramConfig{});

/** Synthesise the 2L-TS (McC) stream for a trace. */
mem::Trace synthesizeMcc(const mem::Trace &trace,
                         const core::PartitionConfig &config,
                         std::uint64_t seed = 1);

/** Synthesise the 2L-TS (STM) stream for a trace. */
mem::Trace synthesizeStm(const mem::Trace &trace,
                         const core::PartitionConfig &config,
                         std::uint64_t seed = 1);

/**
 * Enable telemetry for a bench run.
 *
 * Parses "--telemetry PATH" and "--telemetry-interval MS" from argv
 * (pass 0/nullptr to skip), falling back to the MOCKTAILS_TELEMETRY
 * and MOCKTAILS_TELEMETRY_INTERVAL_MS environment variables — the env
 * route covers benches whose main() takes no arguments. A final
 * snapshot is appended at process exit. Idempotent; banner() calls
 * the env-only form, so every bench honours the variables.
 */
void initTelemetry(int argc = 0, char **argv = nullptr);

/**
 * Enable trace-event recording for a bench run.
 *
 * Parses "--trace-out PATH" from argv, falling back to the
 * MOCKTAILS_TRACE_OUT environment variable. Installs a process-wide
 * obs::TraceEventWriter and writes it at process exit (.bin -> compact
 * binary, anything else -> Chrome trace_event JSON). Idempotent;
 * banner() calls the env-only form, so every bench honours the
 * variable without touching its main().
 */
void initTracing(int argc = 0, char **argv = nullptr);

/** Print the bench banner. */
void banner(const char *experiment_id, const char *description);

/**
 * Record a qualitative shape check; prints "check PASS/notice: ...".
 * Returns the condition so callers can aggregate an exit code.
 */
bool shapeCheck(const std::string &what, bool condition);

/** Percentage error helper (see util::percentError). */
inline double
err(double measured, double reference)
{
    return util::percentError(measured, reference);
}

} // namespace bench

#endif // MOCKTAILS_BENCH_COMMON_HPP
