/**
 * @file
 * Fig. 3: the timing of HEVC1's requests — number of requests per
 * 50M-cycle bin, showing clusters of activity separated by long idle
 * periods (the burstiness Mocktails' injection process must capture).
 */

#include <map>

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 3",
           "Requests per 50M-cycle bin for the HEVC1 VPU workload");

    const mem::Trace trace = workloads::makeHevc(100000, 1, 1);
    constexpr mem::Tick bin = 50000000;

    std::map<mem::Tick, std::size_t> bins;
    for (const auto &r : trace)
        ++bins[r.tick / bin];

    const mem::Tick last = trace.duration() / bin;
    std::printf("%-14s %-10s\n", "bin(50Mcyc)", "requests");
    std::size_t busy_bins = 0, idle_bins = 0;
    for (mem::Tick b = 0; b <= last; ++b) {
        const auto it = bins.find(b);
        const std::size_t count = it == bins.end() ? 0 : it->second;
        std::printf("%-14llu %zu\n",
                    static_cast<unsigned long long>(b), count);
        if (count == 0)
            ++idle_bins;
        else
            ++busy_bins;
    }

    std::printf("\n");
    bool ok = true;
    ok &= shapeCheck("activity spans hundreds of millions of cycles",
                     trace.duration() > 500000000ull);
    ok &= shapeCheck("request clusters are separated in time "
                     "(bursty, not uniform)",
                     [&] {
                         // Max bin count >> mean bin count.
                         std::size_t max_count = 0;
                         for (const auto &[b, c] : bins)
                             max_count = std::max(max_count, c);
                         const double mean =
                             static_cast<double>(trace.size()) /
                             static_cast<double>(last + 1);
                         return static_cast<double>(max_count) >
                                2.0 * mean;
                     }());
    (void)ok;
    return 0;
}
