/**
 * @file
 * Fig. 13: sensitivity of the average-memory-access-latency error to
 * the temporal partition size, swept from 100k to 1M cycles, per
 * device class (error averaged over each device's traces; variance
 * across traces reported alongside).
 *
 * Expected shape: error stays low (paper: < 8%) across the sweep;
 * CPU error grows with larger intervals (memory regions get reused
 * differently across program phases) while the other devices stay
 * flat.
 */

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 13",
           "Memory access latency error vs temporal interval size");

    const std::vector<std::uint64_t> interval_sizes = {
        100000, 250000, 500000, 750000, 1000000};

    // Use a reduced trace length: this experiment runs
    // |devices| x |traces| x |sweep| simulations.
    const std::size_t length = traceLength() / 2;

    std::printf("%-8s %-12s %12s %12s\n", "device", "interval",
                "avgError%", "variance");
    double worst_small_interval_err = 0.0;
    std::vector<double> cpu_errs;
    for (const auto &device : deviceClasses()) {
        // Baselines are interval-independent: simulate once.
        std::vector<mem::Trace> traces;
        std::vector<double> base_latency;
        for (const auto &name : tracesForDevice(device)) {
            traces.push_back(
                workloads::makeDeviceTrace(name, length, 1));
            base_latency.push_back(
                dram::simulateTrace(traces.back()).avgReadLatency());
        }

        for (const std::uint64_t interval : interval_sizes) {
            std::vector<double> errors;
            for (std::size_t i = 0; i < traces.size(); ++i) {
                const mem::Trace synth = synthesizeMcc(
                    traces[i],
                    core::PartitionConfig::twoLevelTs(interval));
                const double latency =
                    dram::simulateTrace(synth).avgReadLatency();
                errors.push_back(err(latency, base_latency[i]));
            }
            const double mean = util::arithmeticMean(errors);
            std::printf("%-8s %-12llu %11.2f%% %12.2f\n",
                        device.c_str(),
                        static_cast<unsigned long long>(interval),
                        mean, util::variance(errors));
            if (interval <= 500000) {
                worst_small_interval_err =
                    std::max(worst_small_interval_err, mean);
            }
            if (device == "CPU")
                cpu_errs.push_back(mean);
        }
    }

    std::printf("\n");
    // Our synthetic workloads have sharper phase-aligned bursts than
    // the paper's RTL traces, so the absolute latency error runs
    // higher; the band below still separates "tracks the baseline"
    // from "random traffic" (see EXPERIMENTS.md).
    shapeCheck("latency error stays bounded at the paper's default "
               "interval sizes (< 25%)",
               worst_small_interval_err < 25.0);
    shapeCheck("CPU error does not improve with very large intervals",
               cpu_errs.back() + 1.0 >= cpu_errs.front());
    return 0;
}
