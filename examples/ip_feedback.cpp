/**
 * @file
 * Example: feedback for IP-block designers (paper Sec. VI).
 *
 * "Although Mocktails focuses on the memory system, it can provide
 * insights to the IP block designers; for example, if the traces
 * generated do not saturate the available memory bandwidth, then more
 * parallelism can be introduced into the accelerator... If row buffer
 * locality is poor, IP designers may want to try and modify the
 * access pattern of their designs."
 *
 * This tool runs each device profile against the Table III memory
 * system and prints exactly that guidance: bandwidth headroom, row
 * locality, queue pressure and backpressure, with simple heuristics
 * turning the numbers into recommendations.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "workloads/devices.hpp"

namespace
{

constexpr std::size_t traceLen = 30000;

void
analyse(const std::string &name)
{
    using namespace mocktails;

    const core::Profile profile = core::buildProfile(
        workloads::makeDeviceTrace(name, traceLen, 1),
        core::PartitionConfig::twoLevelTs());
    core::SynthesisEngine engine(profile, 5);
    const auto result = dram::simulateSource(engine);

    double utilization = 0.0;
    for (const auto &channel : result.channels)
        utilization = std::max(utilization, channel.utilization());
    const double rd_hit_rate =
        result.readBursts() == 0
            ? 0.0
            : static_cast<double>(result.readRowHits()) /
                  static_cast<double>(result.readBursts());
    const double wr_queue = result.avgWriteQueueLength();

    std::printf("%s\n", name.c_str());
    std::printf("  busiest-channel utilization: %5.1f%%\n",
                100.0 * utilization);
    std::printf("  read row-hit rate:        %5.1f%%\n",
                100.0 * rd_hit_rate);
    std::printf("  avg write queue:          %5.1f bursts\n",
                wr_queue);
    std::printf("  backpressure delay:       %llu cycles\n",
                static_cast<unsigned long long>(
                    result.accumulatedDelay));

    // Sec. VI's design guidance, mechanised.
    if (utilization < 0.3) {
        std::printf("  -> memory bandwidth is far from saturated: "
                    "more parallelism (outstanding requests) could "
                    "be introduced into the IP.\n");
    } else if (utilization > 0.85) {
        std::printf("  -> the IP saturates the memory system; "
                    "latency hiding matters more than added "
                    "parallelism.\n");
    }
    if (rd_hit_rate < 0.6) {
        std::printf("  -> row-buffer locality is poor: consider "
                    "reordering the IP's access pattern (e.g. "
                    "tiling or batching rows).\n");
    }
    if (result.accumulatedDelay > 0) {
        std::printf("  -> the stream experienced backpressure; "
                    "burst pacing or deeper IP-side buffering would "
                    "smooth injection.\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("IP-designer feedback from Mocktails profiles "
                "(paper Sec. VI)\n\n");
    for (const char *name :
         {"Crypto1", "FBC-Tiled1", "Multi-layer", "T-Rex1", "OpenCL1",
          "HEVC1"}) {
        analyse(name);
    }
    return 0;
}
