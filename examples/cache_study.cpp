/**
 * @file
 * Example: CPU cache exploration from profiles (paper Sec. V).
 *
 * Compares L1 miss rates of original vs. Mocktails-synthesised
 * request streams across cache sizes and associativities for a few
 * SPEC-like CPU workloads, and contrasts with the HRD baseline.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/hrd.hpp"
#include "cache/hierarchy.hpp"
#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "workloads/spec.hpp"

namespace
{

constexpr std::size_t traceLen = 100000;

double
l1MissRate(const mocktails::mem::Trace &trace,
           const mocktails::cache::CacheConfig &l1)
{
    mocktails::cache::HierarchyConfig config;
    config.l1 = l1;
    mocktails::cache::Hierarchy hierarchy(config);
    hierarchy.run(trace);
    return 100.0 * hierarchy.l1Stats().missRate();
}

} // namespace

int
main()
{
    using namespace mocktails;

    const std::vector<std::string> benchmarks = {"gobmk", "libquantum",
                                                 "h264ref"};
    const std::vector<cache::CacheConfig> l1_configs = {
        {16 * 1024, 2, 64},
        {32 * 1024, 4, 64},
        {32 * 1024, 8, 64},
    };

    std::printf("%-12s %-14s %10s %10s %10s\n", "benchmark", "L1",
                "baseline", "mocktails", "hrd");
    for (const auto &name : benchmarks) {
        const mem::Trace trace =
            workloads::makeSpecTrace(name, traceLen, 1);

        // Mocktails: 100k-request phases + dynamic spatial regions.
        const core::Profile profile = core::buildProfile(
            trace, core::PartitionConfig::twoLevelTsByRequests(10000));
        const mem::Trace mocktails_synth = core::synthesize(profile, 1);

        // HRD baseline.
        const mem::Trace hrd_synth =
            baselines::synthesizeHrd(baselines::buildHrd(trace), 1);

        for (const auto &l1 : l1_configs) {
            char label[32];
            std::snprintf(label, sizeof(label), "%lluKB %u-way",
                          static_cast<unsigned long long>(l1.size /
                                                          1024),
                          l1.associativity);
            std::printf("%-12s %-14s %9.2f%% %9.2f%% %9.2f%%\n",
                        name.c_str(), label, l1MissRate(trace, l1),
                        l1MissRate(mocktails_synth, l1),
                        l1MissRate(hrd_synth, l1));
        }
    }

    // Replacement-policy exploration (a Sec. VI use case): does the
    // synthetic stream rank LRU / FIFO / random like the original?
    std::printf("\nreplacement policies, 16KB 2-way L1 "
                "(baseline | mocktails):\n");
    std::printf("%-12s %12s %12s %12s\n", "benchmark", "LRU", "FIFO",
                "Random");
    for (const auto &name : benchmarks) {
        const mem::Trace trace =
            workloads::makeSpecTrace(name, traceLen, 1);
        const mem::Trace synth = core::synthesize(
            core::buildProfile(
                trace,
                core::PartitionConfig::twoLevelTsByRequests(10000)),
            1);
        std::printf("%-12s", name.c_str());
        for (const auto policy :
             {cache::Replacement::Lru, cache::Replacement::Fifo,
              cache::Replacement::Random}) {
            const cache::CacheConfig l1{16 * 1024, 2, 64, policy};
            std::printf("  %4.1f%%|%4.1f%%", l1MissRate(trace, l1),
                        l1MissRate(synth, l1));
        }
        std::printf("\n");
    }
    return 0;
}
