/**
 * @file
 * Example: a heterogeneous multi-IP SoC study from profiles alone.
 *
 * The paper's Introduction motivates exactly this experiment: several
 * IP blocks (CPU, GPU, DPU, VPU) place concurrent, very different
 * demands on a shared memory system, and academia cannot model the
 * proprietary blocks. Here every IP is a Mocktails profile; we run
 * each IP alone and then all four together, and report how contention
 * changes per-IP read latency and the controller's row locality.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "dram/soc.hpp"
#include "workloads/devices.hpp"

namespace
{

constexpr std::size_t traceLen = 30000;

void
printDevice(const mocktails::dram::SocDeviceResult &device)
{
    std::printf("  %-18s %8llu req %10.1f rd-lat %8llu delay\n",
                device.name.c_str(),
                static_cast<unsigned long long>(device.injected),
                device.readLatency.mean(),
                static_cast<unsigned long long>(
                    device.accumulatedDelay));
}

} // namespace

int
main()
{
    using namespace mocktails;

    const std::vector<std::string> names = {"CPU-G", "FBC-Linear1",
                                            "T-Rex1", "HEVC1"};

    // Industry side: one profile per IP block.
    std::vector<core::Profile> profiles;
    for (const auto &name : names) {
        profiles.push_back(core::buildProfile(
            workloads::makeDeviceTrace(name, traceLen, 1),
            core::PartitionConfig::twoLevelTs()));
    }

    // Academia side, experiment 1: each IP alone.
    std::printf("each IP alone:\n");
    std::vector<double> solo_latency;
    for (const auto &profile : profiles) {
        core::SynthesisEngine engine(profile, 11);
        const auto result = dram::simulateSoc(
            {{profile.name, engine}});
        printDevice(result.devices[0]);
        solo_latency.push_back(result.devices[0].readLatency.mean());
    }

    // Experiment 2: all four IPs share the memory system.
    std::printf("\nall IPs together:\n");
    std::vector<std::shared_ptr<core::SynthesisEngine>> engines;
    std::vector<dram::SocDevice> devices;
    for (const auto &profile : profiles) {
        engines.push_back(
            std::make_shared<core::SynthesisEngine>(profile, 11));
        devices.push_back({profile.name, engines.back()});
    }
    const auto shared = dram::simulateSoc(devices);
    for (const auto &device : shared.devices)
        printDevice(device);

    std::printf("\ninterference (shared / alone read latency):\n");
    for (std::size_t i = 0; i < names.size(); ++i) {
        const double shared_latency =
            shared.devices[i].readLatency.mean();
        std::printf("  %-18s %.2fx\n", names[i].c_str(),
                    solo_latency[i] > 0.0
                        ? shared_latency / solo_latency[i]
                        : 0.0);
    }

    const double rd_hit_rate =
        shared.readBursts() == 0
            ? 0.0
            : 100.0 * static_cast<double>(shared.readRowHits()) /
                  static_cast<double>(shared.readBursts());
    std::printf("\nshared-system read row-hit rate: %.1f%%\n",
                rd_hit_rate);

    // Experiment 3: funnel all IPs through one arbitrated link (the
    // non-coherent interconnect topology) instead of private ports.
    std::printf("\nall IPs behind one round-robin link:\n");
    std::vector<std::shared_ptr<core::SynthesisEngine>> engines2;
    std::vector<dram::SocDevice> devices2;
    for (const auto &profile : profiles) {
        engines2.push_back(
            std::make_shared<core::SynthesisEngine>(profile, 11));
        devices2.push_back({profile.name, engines2.back()});
    }
    dram::SocConfig link_config;
    link_config.sharedLink = true;
    link_config.arbiter.linkLatency = 4;
    const auto linked = dram::simulateSoc(devices2, link_config);
    for (std::size_t i = 0; i < linked.devices.size(); ++i) {
        printDevice(linked.devices[i]);
        std::printf("    link grants: %llu\n",
                    static_cast<unsigned long long>(
                        linked.linkGrants[i]));
    }

    // Experiment 4: give the display pipeline (FBC-Linear1, index 1)
    // strict link priority, as a real SoC would to avoid underflow.
    std::printf("\nshared link with display priority:\n");
    std::vector<std::shared_ptr<core::SynthesisEngine>> engines3;
    std::vector<dram::SocDevice> devices3;
    for (const auto &profile : profiles) {
        engines3.push_back(
            std::make_shared<core::SynthesisEngine>(profile, 11));
        devices3.push_back({profile.name, engines3.back()});
    }
    dram::SocConfig qos_config = link_config;
    qos_config.arbiter.priorities = {1, 0, 1, 1}; // DPU urgent
    const auto qos = dram::simulateSoc(devices3, qos_config);
    for (const auto &device : qos.devices)
        printDevice(device);
    std::printf("  (DPU read latency: %.1f with priority vs %.1f "
                "without)\n",
                qos.devices[1].readLatency.mean(),
                linked.devices[1].readLatency.mean());

    std::printf("\n(every IP above is a statistical profile -- no "
                "proprietary trace required)\n");
    return 0;
}
