/**
 * @file
 * Example: an SoC memory-controller design study with Mocktails.
 *
 * This is the use case the paper motivates (Sec. VI): an architect
 * without access to proprietary IP explores memory-controller policies
 * using synthetic traffic from Mocktails profiles. We sweep the page
 * policy and scheduling policy across one workload per device class
 * and report row-hit rates and read latency per configuration — the
 * kind of table a real study would produce, generated entirely from
 * profiles rather than raw traces.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "workloads/devices.hpp"

namespace
{

constexpr std::size_t traceLen = 40000;

const char *
policyName(mocktails::dram::PagePolicy policy)
{
    using mocktails::dram::PagePolicy;
    switch (policy) {
      case PagePolicy::Open:
        return "open";
      case PagePolicy::OpenAdaptive:
        return "open-adaptive";
      case PagePolicy::Closed:
        return "closed";
    }
    return "?";
}

} // namespace

int
main()
{
    using namespace mocktails;

    // One representative workload per device class.
    const std::vector<std::string> names = {"CPU-G", "FBC-Tiled1",
                                            "T-Rex1", "HEVC1"};

    // Industry side: build one profile per workload.
    std::vector<core::Profile> profiles;
    for (const auto &name : names) {
        const mem::Trace trace =
            workloads::makeDeviceTrace(name, traceLen, 1);
        profiles.push_back(core::buildProfile(
            trace, core::PartitionConfig::twoLevelTs()));
    }

    // Academia side: sweep controller policies using only profiles.
    std::printf("%-12s %-14s %-8s %9s %9s %10s\n", "workload",
                "page-policy", "sched", "rdHit%", "wrHit%",
                "rdLatency");
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (const auto page :
             {dram::PagePolicy::Open, dram::PagePolicy::OpenAdaptive,
              dram::PagePolicy::Closed}) {
            for (const auto sched :
                 {dram::Scheduling::FrFcfs, dram::Scheduling::Fcfs}) {
                dram::DramConfig config;
                config.pagePolicy = page;
                config.scheduling = sched;

                core::SynthesisEngine engine(profiles[i], 7);
                const auto result =
                    dram::simulateSource(engine, config);

                const double rd_hit =
                    result.readBursts() == 0
                        ? 0.0
                        : 100.0 *
                              static_cast<double>(
                                  result.readRowHits()) /
                              static_cast<double>(result.readBursts());
                const double wr_hit =
                    result.writeBursts() == 0
                        ? 0.0
                        : 100.0 *
                              static_cast<double>(
                                  result.writeRowHits()) /
                              static_cast<double>(
                                  result.writeBursts());
                std::printf("%-12s %-14s %-8s %8.1f%% %8.1f%% %10.1f\n",
                            names[i].c_str(), policyName(page),
                            sched == dram::Scheduling::FrFcfs
                                ? "fr-fcfs"
                                : "fcfs",
                            rd_hit, wr_hit, result.avgReadLatency());
            }
        }
    }

    std::printf("\nNote: every row above was produced from a profile "
                "alone -- no trace left the 'industry' side.\n");
    return 0;
}
