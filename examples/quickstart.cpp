/**
 * @file
 * Quickstart: the full Mocktails pipeline in ~60 lines.
 *
 * 1. Obtain a memory trace (here: a synthetic VPU decode workload).
 * 2. Build a statistical profile with the paper's 2L-TS hierarchy.
 * 3. Save/reload the profile — this is the artefact industry shares.
 * 4. Synthesise a new request stream from the profile.
 * 5. Compare original vs. synthetic on the DRAM controller model.
 */

#include <cstdio>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "mem/trace_stats.hpp"
#include "workloads/devices.hpp"

int
main()
{
    using namespace mocktails;

    // 1. A trace of 50k requests from a (synthetic) HEVC decoder.
    const mem::Trace trace = workloads::makeHevc(50000, /*seed=*/1);
    const mem::TraceStats stats = mem::computeStats(trace);
    std::printf("trace %s: %llu requests, %.1f%% reads, %llu pages\n",
                trace.name().c_str(),
                static_cast<unsigned long long>(stats.requests),
                100.0 * stats.readFraction(),
                static_cast<unsigned long long>(stats.touched4k));

    // 2. Build the statistical profile (2L-TS: 500k-cycle phases,
    //    then dynamic spatial partitions).
    const core::Profile profile =
        core::buildProfile(trace, core::PartitionConfig::twoLevelTs());
    std::printf("profile: %zu leaves, %zu bytes compressed\n",
                profile.leaves.size(),
                profile.encodeCompressed().size());

    // 3. Round-trip through the shareable file format.
    const std::string path = "quickstart.mkp";
    if (!core::saveProfile(profile, path)) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 1;
    }
    core::Profile loaded;
    if (!core::loadProfile(path, loaded)) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 1;
    }

    // 4. Synthesise a fresh request stream.
    const mem::Trace synthetic = core::synthesize(loaded, /*seed=*/42);
    std::printf("synthesised %zu requests\n", synthetic.size());

    // 5. Validate on the DRAM model (Table III configuration).
    const auto base = dram::simulateTrace(trace);
    const auto synth = dram::simulateTrace(synthetic);
    std::printf("%-22s %12s %12s\n", "metric", "original", "synthetic");
    std::printf("%-22s %12llu %12llu\n", "read bursts",
                static_cast<unsigned long long>(base.readBursts()),
                static_cast<unsigned long long>(synth.readBursts()));
    std::printf("%-22s %12llu %12llu\n", "write bursts",
                static_cast<unsigned long long>(base.writeBursts()),
                static_cast<unsigned long long>(synth.writeBursts()));
    std::printf("%-22s %12llu %12llu\n", "read row hits",
                static_cast<unsigned long long>(base.readRowHits()),
                static_cast<unsigned long long>(synth.readRowHits()));
    std::printf("%-22s %12llu %12llu\n", "write row hits",
                static_cast<unsigned long long>(base.writeRowHits()),
                static_cast<unsigned long long>(synth.writeRowHits()));
    std::printf("%-22s %12.1f %12.1f\n", "avg read latency",
                base.avgReadLatency(), synth.avgReadLatency());
    return 0;
}
