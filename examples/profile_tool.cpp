/**
 * @file
 * profile_tool: a small CLI around the Mocktails pipeline.
 *
 * Commands:
 *   generate <workload> <requests> <trace.mkt>   synthesise a workload
 *   profile  <trace.mkt> <profile.mkp> [cycles]  trace -> profile
 *   build    <trace> <profile.mkp> [cycles]      streamed/out-of-core
 *   synth    <profile.mkp> <out.mkt> [seed]      profile -> trace
 *   info     <file.mkt|file.mkp>                 describe a file
 *   export   <trace.mkt> <out.csv|.ram|.ds3>     convert a trace
 *   simulate <file.mkt|file.mkp>                 run the DRAM model
 *   compare  <a.mkt|a.mkp> <b.mkt|b.mkp>         DRAM metrics, side by
 *                                                side with % error
 *   serve    <profile.mkp|mix.scn>...            stream profiles over TCP
 *   fetch    <host:port> <id> <out>              synthesise remotely
 *   replay   <rec.mksr> [host:port]              re-drive a recording
 *   stats    <host:port>                         live server counters
 *   scenario run|list <mix.scn>                  composed SoC mixes
 *
 * This is the command-line face of paper Fig. 1: `profile` is what
 * industry runs; `synth`, `simulate` and `compare` are what academia
 * runs.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "core/model_generator.hpp"
#include "core/streamed_build.hpp"
#include "core/summary.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "dram/stats_dump.hpp"
#include "obs/trace_event.hpp"
#include "sampling/representative.hpp"
#include "sampling/sampled_validate.hpp"
#include "scenario/engine.hpp"
#include "scenario/serve.hpp"
#include "serve/client.hpp"
#include "serve/profile_store.hpp"
#include "serve/recorder.hpp"
#include "serve/replay.hpp"
#include "serve/server.hpp"
#include "validation/attribution.hpp"
#include "validation/validate.hpp"
#include "mem/interop.hpp"
#include "mem/request_batch.hpp"
#include "mem/trace_io.hpp"
#include "mem/trace_reader.hpp"
#include "mem/trace_stats.hpp"
#include "telemetry/exporter.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: profile_tool [--threads N] [--telemetry PATH]\n"
        "                    [--telemetry-interval MS]\n"
        "                    [--trace-out PATH] [--report-json PATH]\n"
        "                    [--attribution PATH] <command> [args]\n"
        "  generate <workload> <requests> <trace.mkt>\n"
        "  profile  <trace.mkt> <profile.mkp> [cycles_per_phase]\n"
        "  build    <trace.mkt|trace.csv> <profile.mkp>\n"
        "           [cycles_per_phase] [--max-memory-mb N]\n"
        "           [--spill-dir PATH]\n"
        "  synth    <profile.mkp> <out.mkt> [seed]\n"
        "  info     <file.mkt|file.mkp>\n"
        "  export   <trace.mkt> <out.csv|out.ram|out.ds3>\n"
        "  simulate <file.mkt|file.mkp> [--gem5-stats]\n"
        "  compare  <a.mkt|a.mkp> <b.mkt|b.mkp>\n"
        "  validate <trace.mkt> [profile.mkp] [--sampled[=K]]\n"
        "           [--check-bounds] [--min-speedup N]\n"
        "  reduce   <in.mkp> <out.mkp> [--k N] [--seed N]\n"
        "  trace    <file.mkt|file.mkp> <out.json|out.bin>\n"
        "  serve    <profile.mkp|mix.scn>... [--port P]\n"
        "           [--port-file PATH] [--once N] [--record PATH]\n"
        "  fetch    <host:port> <id> <out.mkt|out.csv> [seed] [chunk]\n"
        "           [--mux]\n"
        "  replay   <rec.mksr> [host:port] [--timing] [--loadgen N]\n"
        "           [--export-jsonl PATH] [--inject-mismatch]\n"
        "  stats    <host:port>\n"
        "  scenario run <mix.scn> [--report-json [PATH]]\n"
        "           [--report-md PATH] [--merged-out PATH]\n"
        "           [--skip-isolated]\n"
        "  scenario list [mix.scn]\n"
        "workloads: Table II names (e.g. HEVC1, T-Rex1, FBC-Linear1)\n"
        "           or SPEC names (e.g. gobmk, libquantum)\n"
        "--threads: worker threads for profile/synth/validate\n"
        "           (0 = one per hardware thread, 1 = sequential;\n"
        "           the output is identical at every count)\n"
        "--telemetry: enable metric collection and append a final\n"
        "           snapshot to PATH (.csv -> CSV, else JSON lines)\n"
        "--telemetry-interval: also snapshot every MS milliseconds\n"
        "--trace-out: record trace events during the command and\n"
        "           write them to PATH (.bin -> compact binary, else\n"
        "           Chrome trace_event JSON for chrome://tracing)\n"
        "--report-json: validate only; dump the ValidationReport to\n"
        "           PATH as JSON (exit stays 3 on failure)\n"
        "--attribution: validate only; re-run the comparison per\n"
        "           hierarchy leaf and write the ranked error table\n"
        "           to PATH (JSON) and PATH-derived .md (markdown)\n"
        "validate with only a trace profiles it with the default\n"
        "  hierarchy first (exercises the whole pipeline)\n"
        "validate --sampled clusters the hierarchy leaves by memory-\n"
        "  behaviour signature and simulates one representative per\n"
        "  cluster, extrapolating the metrics by cluster weight\n"
        "  (=K fixes the cluster count; default picks it by\n"
        "  silhouette); --check-bounds re-runs the full validation\n"
        "  and fails (exit 5) when a sampled metric leaves the\n"
        "  reported error bound; --min-speedup N also requires the\n"
        "  sampled run to be N times faster\n"
        "reduce writes a valid .mkp holding only the representative\n"
        "  leaves plus a weights side-table; it loads and serves\n"
        "  anywhere a full profile does\n"
        "build streams the trace in chunks (CSV input never loads\n"
        "  whole); with --max-memory-mb or --spill-dir it builds the\n"
        "  profile out of core — partial partitions spill to disk\n"
        "  ($TMPDIR unless --spill-dir) under the memory bound, and\n"
        "  the .mkp is byte-identical to the in-memory path\n"
        "trace replays a trace (or a profile, synthesised with\n"
        "  tracing on) through the DRAM and cache substrates\n"
        "serve registers each profile under its file name (the id)\n"
        "  and streams synthesis sessions to fetch clients; --port 0\n"
        "  picks an ephemeral port (written to --port-file), --once N\n"
        "  exits after N connections\n"
        "fetch streams a remote session into a local trace file\n"
        "  (.csv exports CSV); seed defaults to 1, chunk of 0 lets\n"
        "  the server pick the chunk size; --mux rides a multiplexed\n"
        "  protocol-v2 channel (byte-identical result)\n"
        "scenario run replays a .scn device mix through the shared\n"
        "  crossbar and DRAM, printing the interference report\n"
        "  (--report-json with no PATH prints JSON to stdout;\n"
        "  --merged-out saves the merged stream, .csv exports CSV;\n"
        "  --skip-isolated omits the per-device baselines)\n"
        "scenario list shows the device mix of a .scn file, or the\n"
        "  synthetic generator inventory when no file is given\n"
        "serve also accepts .scn scenarios: each registers under\n"
        "  scenario:<name> (fetch --mux merges the device channels)\n"
        "serve --record captures every wire frame to a .mksr flight\n"
        "  recording (off by default; zero-cost when off)\n"
        "replay re-drives a .mksr recording against a live server and\n"
        "  byte-diffs the responses (exit 4 on divergence); --timing\n"
        "  preserves the recorded pacing, --loadgen N clones the\n"
        "  recording across N concurrent connections and prints\n"
        "  p50/p99 chunk latencies (no diffing), --export-jsonl dumps\n"
        "  the recording as JSON lines (no server needed),\n"
        "  --inject-mismatch corrupts the last recorded chunk first\n"
        "  (proves the diff detects divergence)\n"
        "stats asks a live server for its counters (ServerStat) and\n"
        "  prints one 'name value' line per counter\n");
    return 2;
}

/** Worker-thread knob shared by the pipeline commands. */
unsigned g_threads = 0;

/** DRAM simulation options honouring the --threads knob. */
dram::SimulationOptions
simOptions()
{
    dram::SimulationOptions options;
    options.threads = g_threads;
    return options;
}

/** Parse a non-negative integer flag value; exits with usage error. */
bool
parseUnsigned(const char *flag, const char *text, std::uint64_t &out)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || text[0] == '-') {
        std::fprintf(stderr,
                     "profile_tool: %s expects a non-negative "
                     "integer, got '%s'\n",
                     flag, text);
        return false;
    }
    out = n;
    return true;
}

/** Levenshtein distance, for unknown-flag suggestions. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
            row[j] =
                std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
            diag = up;
        }
    }
    return row[b.size()];
}

/**
 * Reject an unknown @p command flag, suggesting the closest of the
 * subcommand's @p known flags (every subcommand exits 2 here).
 */
int
unknownFlag(const char *command, const char *flag,
            const char *const *known, std::size_t count)
{
    const std::string given = flag;
    const char *best = nullptr;
    std::size_t best_distance = 5; // only suggest close matches
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t d = editDistance(given, known[i]);
        if (d < best_distance) {
            best_distance = d;
            best = known[i];
        }
    }
    if (best != nullptr)
        std::fprintf(stderr,
                     "profile_tool: unknown %s flag '%s' "
                     "(did you mean '%s'?)\n",
                     command, flag, best);
    else
        std::fprintf(stderr,
                     "profile_tool: unknown %s flag '%s'\n", command,
                     flag);
    return 2;
}

template <std::size_t N>
int
unknownFlag(const char *command, const char *flag,
            const char *const (&known)[N])
{
    return unknownFlag(command, flag, known, N);
}

mem::Trace
makeWorkload(const std::string &name, std::size_t requests)
{
    for (const auto &spec : workloads::deviceTraces()) {
        if (spec.name == name)
            return spec.make(requests, 1);
    }
    return workloads::makeSpecTrace(name, requests, 1);
}

int
cmdGenerate(const std::string &name, std::size_t requests,
            const std::string &path)
{
    const mem::Trace trace = makeWorkload(name, requests);
    if (!mem::saveTrace(trace, path)) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %zu requests to %s\n", trace.size(),
                path.c_str());
    return 0;
}

int
cmdProfile(const std::string &in, const std::string &out,
           std::uint64_t cycles)
{
    mem::Trace trace;
    if (!mem::loadTrace(in, trace)) {
        std::fprintf(stderr, "error: cannot read %s\n", in.c_str());
        return 1;
    }
    const core::Profile profile = core::buildProfile(
        trace, core::PartitionConfig::twoLevelTs(cycles),
        core::LeafModelerHooks{}, g_threads);
    std::string error;
    if (!core::saveProfile(profile, out, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("profiled %zu requests into %zu leaves (%s)\n",
                trace.size(), profile.leaves.size(),
                profile.config.describe().c_str());
    return 0;
}

int
cmdSynth(const std::string &in, const std::string &out,
         std::uint64_t seed)
{
    core::Profile profile;
    std::string error;
    if (!core::loadProfile(in, profile, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    const mem::Trace synth = core::synthesize(profile, seed, g_threads);
    if (!mem::saveTrace(synth, out)) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("synthesised %zu requests to %s\n", synth.size(),
                out.c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    mem::Trace trace;
    if (mem::loadTrace(path, trace)) {
        const auto s = mem::computeStats(trace);
        std::printf("trace %s (device %s)\n", trace.name().c_str(),
                    trace.device().c_str());
        std::printf("  requests: %llu (%llu R / %llu W)\n",
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.reads),
                    static_cast<unsigned long long>(s.writes));
        std::printf("  bytes:    %llu read, %llu written\n",
                    static_cast<unsigned long long>(s.bytesRead),
                    static_cast<unsigned long long>(s.bytesWritten));
        std::printf("  address:  [0x%llx, 0x%llx), %llu 4K pages\n",
                    static_cast<unsigned long long>(s.minAddr),
                    static_cast<unsigned long long>(s.maxAddr),
                    static_cast<unsigned long long>(s.touched4k));
        std::printf("  time:     ticks %llu..%llu\n",
                    static_cast<unsigned long long>(s.firstTick),
                    static_cast<unsigned long long>(s.lastTick));
        return 0;
    }
    core::Profile profile;
    std::string profile_error;
    if (core::loadProfile(path, profile, &profile_error)) {
        const core::ProfileSummary s = core::summarize(profile);
        std::printf("profile %s (device %s)\n", profile.name.c_str(),
                    profile.device.c_str());
        std::printf("  hierarchy: %s\n",
                    profile.config.describe().c_str());
        std::printf("  leaves:    %llu (%llu singletons)\n",
                    static_cast<unsigned long long>(s.leaves),
                    static_cast<unsigned long long>(
                        s.singletonLeaves));
        std::printf("  requests:  %llu\n",
                    static_cast<unsigned long long>(s.requests));
        std::printf("  size:      %llu bytes compressed\n",
                    static_cast<unsigned long long>(
                        s.compressedBytes));
        std::printf("  models:    %.0f%% constants\n",
                    100.0 * s.constantFraction());
        const auto print_census = [](const char *feature,
                                     const core::FeatureCensus &c) {
            std::printf("  %-9s  %llu const, %llu markov "
                        "(%llu states), %llu other\n",
                        feature,
                        static_cast<unsigned long long>(c.constant),
                        static_cast<unsigned long long>(c.markov),
                        static_cast<unsigned long long>(
                            c.markovStates),
                        static_cast<unsigned long long>(c.other));
        };
        print_census("deltaTime", s.deltaTime);
        print_census("stride", s.stride);
        print_census("op", s.op);
        print_census("size", s.size);
        core::Profile ignored;
        sampling::ReducedWeights weights;
        if (sampling::loadReducedProfile(path, ignored, weights)) {
            std::printf("  reduced:   %zu representatives standing in "
                        "for %llu requests\n",
                        weights.entries.size(),
                        static_cast<unsigned long long>(
                            weights.totalRequests));
        }
        return 0;
    }
    std::fprintf(stderr,
                 "error: %s is neither a trace nor a profile\n"
                 "  (as a profile: %s)\n",
                 path.c_str(), profile_error.c_str());
    return 1;
}

int
cmdExport(const std::string &in, const std::string &out)
{
    mem::Trace trace;
    if (!mem::loadTrace(in, trace)) {
        std::fprintf(stderr, "error: cannot read %s\n", in.c_str());
        return 1;
    }

    // Choose the output format by extension: .ram -> ramulator,
    // .ds3 -> DRAMsim3, anything else -> CSV.
    bool ok;
    const auto ends_with = [&](const char *suffix) {
        const std::size_t n = std::strlen(suffix);
        return out.size() >= n &&
               out.compare(out.size() - n, n, suffix) == 0;
    };
    if (ends_with(".ram"))
        ok = mem::saveRamulatorTrace(trace, out);
    else if (ends_with(".ds3"))
        ok = mem::saveDramsim3Trace(trace, out);
    else
        ok = mem::saveTraceCsv(trace, out);

    if (!ok) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("exported %zu requests to %s\n", trace.size(),
                out.c_str());
    return 0;
}

/** Load a trace directly, or synthesise one from a profile file. */
bool
loadAnyAsTrace(const std::string &path, mem::Trace &trace)
{
    if (mem::loadTrace(path, trace))
        return true;
    core::Profile profile;
    if (core::loadProfile(path, profile)) {
        trace = core::synthesize(profile, 1);
        return true;
    }
    return false;
}

void
printDramMetrics(const char *label, const dram::SimulationResult &r)
{
    std::printf("%s\n", label);
    std::printf("  %-22s %llu / %llu\n", "read/write bursts",
                static_cast<unsigned long long>(r.readBursts()),
                static_cast<unsigned long long>(r.writeBursts()));
    std::printf("  %-22s %llu / %llu\n", "read/write row hits",
                static_cast<unsigned long long>(r.readRowHits()),
                static_cast<unsigned long long>(r.writeRowHits()));
    std::printf("  %-22s %.2f / %.2f\n", "avg rd/wr queue len",
                r.avgReadQueueLength(), r.avgWriteQueueLength());
    std::printf("  %-22s %.1f cycles\n", "avg read latency",
                r.avgReadLatency());
}

/** Extra validate outputs ("" = off), set by the global flags. */
std::string g_report_json_path;
std::string g_attribution_path;

/** Companion markdown path: "a.json" -> "a.md", else PATH + ".md". */
std::string
markdownPathFor(const std::string &path)
{
    const std::string suffix = ".json";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        return path.substr(0, path.size() - suffix.size()) + ".md";
    return path + ".md";
}

/**
 * The attribution drill-down shared by both validate paths. When a
 * representative @p set is given (sampled runs), the markdown gains a
 * per-cluster ranking on top of the per-leaf table.
 */
int
writeAttribution(const mem::Trace &trace, const core::Profile &profile,
                 std::uint64_t seed,
                 const sampling::RepresentativeSet *set)
{
    validation::AttributionOptions attr_options;
    attr_options.seed = seed;
    attr_options.threads = g_threads;
    const validation::AttributionReport attribution =
        validation::attributeErrors(trace, profile, attr_options);
    const std::string md_path = markdownPathFor(g_attribution_path);
    if (!validation::saveAttribution(attribution,
                                     g_attribution_path)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     g_attribution_path.c_str());
        return 1;
    }
    std::string markdown =
        validation::attributionToMarkdown(attribution);
    std::size_t clusters = 0;
    if (set != nullptr) {
        const std::vector<sampling::ClusterAttribution> rows =
            sampling::attributeClusters(attribution, *set);
        clusters = rows.size();
        markdown += "\n## Clusters (ranked worst-first)\n\n";
        markdown += sampling::clusterAttributionToMarkdown(rows);
    }
    std::FILE *f = std::fopen(md_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(markdown.data(), 1, markdown.size(), f) !=
            markdown.size() ||
        std::fclose(f) != 0) {
        if (f != nullptr)
            std::fclose(f);
        std::fprintf(stderr, "error: cannot write %s\n",
                     md_path.c_str());
        return 1;
    }
    if (set != nullptr)
        std::printf("attribution: %zu leaves in %zu clusters ranked "
                    "-> %s, %s\n",
                    attribution.leaves.size(), clusters,
                    g_attribution_path.c_str(), md_path.c_str());
    else
        std::printf("attribution: %zu leaves ranked -> %s, %s\n",
                    attribution.leaves.size(),
                    g_attribution_path.c_str(), md_path.c_str());
    return 0;
}

int
cmdValidate(int argc, char **argv)
{
    bool sampled = false;
    bool check_bounds = false;
    std::uint64_t sampled_k = 0;
    std::uint64_t min_speedup = 0;
    std::vector<const char *> positional;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--sampled", 9) == 0 &&
            (argv[i][9] == '\0' || argv[i][9] == '=')) {
            sampled = true;
            if (argv[i][9] == '=' &&
                !parseUnsigned("--sampled", argv[i] + 10, sampled_k))
                return 2;
        } else if (std::strcmp(argv[i], "--check-bounds") == 0) {
            check_bounds = true;
        } else if (std::strcmp(argv[i], "--min-speedup") == 0 &&
                   i + 1 < argc) {
            if (!parseUnsigned("--min-speedup", argv[++i],
                               min_speedup))
                return 2;
        } else if (argv[i][0] == '-') {
            static const char *const kFlags[] = {"--sampled",
                                                 "--check-bounds",
                                                 "--min-speedup"};
            return unknownFlag("validate", argv[i], kFlags);
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (positional.empty() || positional.size() > 2)
        return usage();
    if ((check_bounds || min_speedup > 0) && !sampled) {
        std::fprintf(stderr,
                     "profile_tool: --check-bounds/--min-speedup "
                     "need --sampled\n");
        return 2;
    }
    const std::string trace_path = positional[0];
    const std::string profile_path =
        positional.size() == 2 ? positional[1] : "";

    mem::Trace trace;
    if (!mem::loadTrace(trace_path, trace)) {
        std::fprintf(stderr, "error: cannot read %s\n",
                     trace_path.c_str());
        return 1;
    }
    validation::ValidationOptions options;
    options.threads = g_threads;
    core::Profile profile;
    std::string error;
    if (profile_path.empty()) {
        // Single-argument form: build the profile here with the
        // default hierarchy, then synthesise and compare. One command
        // that exercises partitioning, fitting, synthesis, the DRAM
        // model and the cache hierarchy — the telemetry smoke test.
        profile = core::buildProfile(
            trace, core::PartitionConfig::twoLevelTs(500000),
            core::LeafModelerHooks{}, g_threads);
    } else if (!core::loadProfile(profile_path, profile, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    if (!sampled) {
        const validation::ValidationReport report =
            validation::validateProfile(trace, profile, options);
        std::fputs(validation::formatReport(report).c_str(), stdout);
        if (!g_report_json_path.empty() &&
            !validation::saveReportJson(report, g_report_json_path)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         g_report_json_path.c_str());
            return 1;
        }
        if (!g_attribution_path.empty()) {
            const int rc = writeAttribution(trace, profile,
                                            options.seed, nullptr);
            if (rc != 0)
                return rc;
        }
        return report.passed ? 0 : 3;
    }

    // --sampled: cluster the leaves, simulate one medoid per cluster,
    // extrapolate by weight. --check-bounds re-runs the full path and
    // asserts the sampled errors stay within the predicted bound (the
    // CI smoke); --min-speedup N additionally requires the sampled
    // wall clock to beat the full one N-fold. Both fail with exit 5.
    sampling::SampledValidationOptions soptions;
    soptions.base = options;
    soptions.sampling.k = static_cast<std::uint32_t>(sampled_k);
    soptions.sampling.threads = g_threads;

    const auto t0 = std::chrono::steady_clock::now();
    const sampling::SampledValidationReport report =
        sampling::validateProfileSampled(trace, profile, soptions);
    const double sampled_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::fputs(sampling::formatSampledReport(report).c_str(), stdout);

    if (!g_report_json_path.empty() &&
        !sampling::saveSampledReportJson(report, g_report_json_path)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     g_report_json_path.c_str());
        return 1;
    }
    if (!g_attribution_path.empty()) {
        const int rc = writeAttribution(trace, profile, options.seed,
                                        report.matched ? &report.set
                                                       : nullptr);
        if (rc != 0)
            return rc;
    }

    if (check_bounds || min_speedup > 0) {
        const auto t1 = std::chrono::steady_clock::now();
        const validation::ValidationReport full =
            validation::validateProfile(trace, profile, options);
        const double full_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t1)
                .count();
        bool ok = true;
        if (check_bounds) {
            const sampling::BoundsCheck check =
                sampling::checkAgainstFull(report, full);
            for (const std::string &line : check.lines)
                std::printf("  %s\n", line.c_str());
            std::printf("bounds check: worst delta %.2f%% %s bound "
                        "%.2f%% -> %s\n",
                        check.worstDeltaPercent,
                        check.passed ? "<=" : ">", check.boundPercent,
                        check.passed ? "PASS" : "FAIL");
            ok = ok && check.passed;
        }
        const double speedup =
            sampled_ms > 0.0 ? full_ms / sampled_ms : 0.0;
        std::printf("speedup: full %.0f ms / sampled %.0f ms = "
                    "%.1fx\n",
                    full_ms, sampled_ms, speedup);
        if (min_speedup > 0 &&
            speedup < static_cast<double>(min_speedup)) {
            std::printf("speedup check: %.1fx < required %llux -> "
                        "FAIL\n",
                        speedup,
                        static_cast<unsigned long long>(min_speedup));
            ok = false;
        }
        if (!ok)
            return 5;
    }
    return report.report.passed ? 0 : 3;
}

/**
 * `reduce`: persist the representative selection as a reduced .mkp —
 * only the medoid leaves plus the weights side-table trailer. The file
 * stays a valid profile: info/synth/serve load it unchanged.
 */
int
cmdReduce(int argc, char **argv)
{
    std::uint64_t k = 0;
    std::uint64_t seed = 1;
    std::vector<const char *> positional;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
            if (!parseUnsigned("--k", argv[++i], k))
                return 2;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            if (!parseUnsigned("--seed", argv[++i], seed))
                return 2;
        } else if (argv[i][0] == '-') {
            static const char *const kFlags[] = {"--k", "--seed"};
            return unknownFlag("reduce", argv[i], kFlags);
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (positional.size() != 2)
        return usage();

    core::Profile profile;
    std::string error;
    if (!core::loadProfile(positional[0], profile, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    if (profile.leaves.empty()) {
        std::fprintf(stderr, "error: %s has no leaves to reduce\n",
                     positional[0]);
        return 1;
    }

    sampling::SamplingOptions options;
    options.k = static_cast<std::uint32_t>(k);
    options.seed = seed;
    options.threads = g_threads;
    const sampling::RepresentativeSet set =
        sampling::selectRepresentatives(profile, options);
    const core::Profile reduced =
        sampling::makeReducedProfile(profile, set);
    if (!sampling::saveReducedProfile(reduced, set, positional[1],
                                      &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    const std::uint64_t kept = set.representativeRequests();
    std::printf("reduced %zu leaves -> %u representatives "
                "(silhouette %.3f, bound +/-%.1f%%)\n",
                profile.leaves.size(), set.k, set.meanSilhouette,
                set.errorBoundPercent);
    std::printf("requests: %llu full, %llu representative (%.1fx)\n",
                static_cast<unsigned long long>(set.totalRequests),
                static_cast<unsigned long long>(kept),
                kept > 0 ? static_cast<double>(set.totalRequests) /
                               static_cast<double>(kept)
                         : 0.0);
    std::printf("%8s %8s %8s %12s %9s %8s\n", "cluster", "medoid",
                "leaves", "requests", "weight", "bound");
    for (std::size_t c = 0; c < set.clusters.size(); ++c) {
        const sampling::ClusterInfo &info = set.clusters[c];
        std::printf("%8zu %8u %8zu %12llu %9.2f %7.1f%%\n", c,
                    info.medoidLeaf, info.members.size(),
                    static_cast<unsigned long long>(info.requests),
                    info.weight, info.errorBoundPercent);
    }
    std::printf("wrote %s\n", positional[1]);
    return 0;
}

int
cmdTrace(const std::string &in, const std::string &out)
{
    // The command-scoped collector below (main) is optional here: the
    // trace command always collects, into its own writer when no
    // --trace-out was given.
    obs::TraceEventWriter local;
    obs::TraceEventWriter *writer = obs::collector();
    const bool own_writer = writer == nullptr;
    if (own_writer)
        obs::setCollector(writer = &local);

    mem::Trace trace;
    bool loaded = mem::loadTrace(in, trace);
    if (!loaded) {
        core::Profile profile;
        if (core::loadProfile(in, profile)) {
            // Synthesise with the collector installed so leaf
            // emission and merge events land in the output too.
            trace = core::synthesize(profile, 1, g_threads);
            loaded = true;
        }
    }
    if (!loaded) {
        if (own_writer)
            obs::setCollector(nullptr);
        std::fprintf(stderr, "error: cannot read %s\n", in.c_str());
        return 1;
    }

    dram::simulateTrace(trace, dram::DramConfig{},
                        interconnect::CrossbarConfig{}, simOptions());
    cache::Hierarchy hierarchy{cache::HierarchyConfig{}};
    hierarchy.run(trace);

    if (own_writer)
        obs::setCollector(nullptr);

    const bool binary =
        out.size() > 4 &&
        out.compare(out.size() - 4, 4, ".bin") == 0;
    const bool ok =
        binary ? writer->saveBinary(out) : writer->saveJson(out);
    if (!ok) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("recorded %zu trace events (%llu dropped) -> %s\n",
                writer->size(),
                static_cast<unsigned long long>(writer->dropped()),
                out.c_str());
    return 0;
}

int
cmdSimulate(const std::string &path, bool gem5_style)
{
    mem::Trace trace;
    if (!loadAnyAsTrace(path, trace)) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 1;
    }
    const auto result = dram::simulateTrace(
        trace, dram::DramConfig{}, interconnect::CrossbarConfig{},
        simOptions());
    if (gem5_style)
        std::fputs(dram::dumpStats(result).c_str(), stdout);
    else
        printDramMetrics(path.c_str(), result);
    return 0;
}

int
cmdCompare(const std::string &path_a, const std::string &path_b)
{
    mem::Trace a, b;
    if (!loadAnyAsTrace(path_a, a) || !loadAnyAsTrace(path_b, b)) {
        std::fprintf(stderr, "error: cannot read inputs\n");
        return 1;
    }
    const auto ra = dram::simulateTrace(
        a, dram::DramConfig{}, interconnect::CrossbarConfig{},
        simOptions());
    const auto rb = dram::simulateTrace(
        b, dram::DramConfig{}, interconnect::CrossbarConfig{},
        simOptions());

    const auto row = [](const char *metric, double va, double vb) {
        std::printf("%-22s %14.1f %14.1f %9.2f%%\n", metric, va, vb,
                    mocktails::util::percentError(vb, va));
    };
    std::printf("%-22s %14s %14s %10s\n", "metric", "A", "B", "err");
    row("read bursts", static_cast<double>(ra.readBursts()),
        static_cast<double>(rb.readBursts()));
    row("write bursts", static_cast<double>(ra.writeBursts()),
        static_cast<double>(rb.writeBursts()));
    row("read row hits", static_cast<double>(ra.readRowHits()),
        static_cast<double>(rb.readRowHits()));
    row("write row hits", static_cast<double>(ra.writeRowHits()),
        static_cast<double>(rb.writeRowHits()));
    row("avg rd queue", ra.avgReadQueueLength(),
        rb.avgReadQueueLength());
    row("avg wr queue", ra.avgWriteQueueLength(),
        rb.avgWriteQueueLength());
    row("avg rd latency", ra.avgReadLatency(), rb.avgReadLatency());
    return 0;
}

/**
 * `build`: trace -> profile like `profile`, but through the chunked
 * TraceReader front end, with an optional out-of-core mode.
 *
 * Without --max-memory-mb/--spill-dir the streamed trace is
 * materialised and fed to the in-memory builder (the default, exactly
 * `profile` plus CSV input). With either flag the profile is built
 * out of core: chunked streaming, bounded working set, spill-and-merge
 * partitioning — and a byte-identical .mkp.
 */
int
cmdBuild(int argc, char **argv)
{
    std::uint64_t cycles = 500000;
    std::uint64_t max_mb = 0;
    std::string spill_dir;
    bool streamed = false;
    std::vector<const char *> positional;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-memory-mb") == 0 &&
            i + 1 < argc) {
            if (!parseUnsigned("--max-memory-mb", argv[++i], max_mb))
                return 2;
            streamed = true;
        } else if (std::strcmp(argv[i], "--spill-dir") == 0 &&
                   i + 1 < argc) {
            spill_dir = argv[++i];
            streamed = true;
        } else if (argv[i][0] == '-') {
            static const char *const kFlags[] = {"--max-memory-mb",
                                                 "--spill-dir"};
            return unknownFlag("build", argv[i], kFlags);
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (positional.size() < 2 || positional.size() > 3)
        return usage();
    const std::string in = positional[0];
    const std::string out = positional[1];
    if (positional.size() == 3 &&
        !parseUnsigned("cycles_per_phase", positional[2], cycles))
        return 2;

    std::string error;
    auto reader = mem::openTraceReader(in, &error);
    if (!reader) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    const auto config = core::PartitionConfig::twoLevelTs(cycles);

    core::Profile profile;
    if (streamed) {
        core::StreamedBuildOptions options;
        options.maxMemoryBytes = max_mb << 20;
        options.spillDir = spill_dir;
        options.threads = g_threads;
        profile = core::buildProfileStreamed(*reader, config, options,
                                             &error);
        if (!error.empty()) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
    } else {
        mem::Trace trace(reader->name(), reader->device());
        trace.requests().reserve(reader->sizeHint());
        mem::RequestBatch batch;
        while (reader->read(batch, std::size_t{1} << 16) > 0)
            batch.appendTo(trace);
        if (!reader->error().empty()) {
            std::fprintf(stderr, "error: %s\n",
                         reader->error().c_str());
            return 1;
        }
        profile = core::buildProfile(trace, config,
                                     core::LeafModelerHooks{},
                                     g_threads);
    }

    if (!core::saveProfile(profile, out, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("built %llu requests into %zu leaves (%s)%s\n",
                static_cast<unsigned long long>(
                    profile.totalRequests()),
                profile.leaves.size(),
                profile.config.describe().c_str(),
                streamed ? " [out-of-core]" : "");
    return 0;
}

/** File name without directories: "a/b/x.mkp" -> "x.mkp". */
std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

int
cmdServe(int argc, char **argv)
{
    serve::ServerOptions server_options;
    std::string port_file;
    std::string record_path;
    std::uint64_t once = 0;
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i) {
        std::uint64_t value = 0;
        if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            if (!parseUnsigned("--port", argv[++i], value) ||
                value > 65535) {
                std::fprintf(stderr,
                             "profile_tool: --port expects 0..65535\n");
                return 2;
            }
            server_options.port = static_cast<std::uint16_t>(value);
        } else if (std::strcmp(argv[i], "--port-file") == 0 &&
                   i + 1 < argc) {
            port_file = argv[++i];
        } else if (std::strcmp(argv[i], "--once") == 0 &&
                   i + 1 < argc) {
            if (!parseUnsigned("--once", argv[++i], value))
                return 2;
            once = value;
        } else if (std::strcmp(argv[i], "--record") == 0 &&
                   i + 1 < argc) {
            record_path = argv[++i];
        } else if (argv[i][0] == '-') {
            static const char *const kFlags[] = {"--port", "--port-file",
                                                 "--once", "--record"};
            return unknownFlag("serve", argv[i], kFlags);
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.empty())
        return usage();

    serve::ProfileStore store;
    for (const std::string &path : paths) {
        // Scenario specs register a merged scenario:<name> id plus one
        // scenario:<name>#<k> id per device; profiles register by file
        // name as before.
        const bool scn = path.size() > 4 &&
                         path.compare(path.size() - 4, 4, ".scn") == 0;
        if (scn) {
            std::string id;
            std::string error;
            if (!scenario::registerScenario(store, path, &id, &error)) {
                std::fprintf(stderr, "error: %s\n", error.c_str());
                return 1;
            }
            std::printf("registered %s -> %s\n", id.c_str(),
                        path.c_str());
        } else {
            const std::string id = baseName(path);
            store.registerProfile(id, path);
            std::printf("registered %s -> %s\n", id.c_str(),
                        path.c_str());
        }
    }

    serve::ServeRecorder recorder;
    std::string error;
    if (!record_path.empty()) {
        if (!recorder.open(record_path, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        server_options.recorder = &recorder;
    }

    serve::StreamServer server(store, server_options);
    if (!server.start(&error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("serving %zu profile(s) on port %u\n", paths.size(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    if (!port_file.empty()) {
        std::FILE *f = std::fopen(port_file.c_str(), "w");
        if (f == nullptr ||
            std::fprintf(f, "%u\n",
                         static_cast<unsigned>(server.port())) < 0 ||
            std::fclose(f) != 0) {
            if (f != nullptr)
                std::fclose(f);
            std::fprintf(stderr, "error: cannot write %s\n",
                         port_file.c_str());
            server.stop();
            return 1;
        }
    }

    // --once N: exit after N connections have been served (tests and
    // scripted use); otherwise serve until killed.
    server.waitForConnections(
        once > 0 ? once : std::numeric_limits<std::uint64_t>::max());
    server.stop();
    std::printf("served %llu connection(s)\n",
                static_cast<unsigned long long>(
                    server.connectionsCompleted()));

    if (!record_path.empty()) {
        const std::uint64_t frames = recorder.frames();
        const std::uint64_t bytes = recorder.bytes();
        if (!recorder.close(&error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        std::printf("recorded %llu frames (%llu bytes) -> %s\n",
                    static_cast<unsigned long long>(frames),
                    static_cast<unsigned long long>(bytes),
                    record_path.c_str());
    }
    return 0;
}

/** Split "host:port" (rejecting port 0); returns false on bad input. */
bool
parseEndpoint(const char *command, const std::string &endpoint,
              std::string &host, std::uint16_t &port)
{
    const std::size_t colon = endpoint.find_last_of(':');
    if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
        std::fprintf(stderr,
                     "profile_tool: %s expects <host:port>, got "
                     "'%s'\n",
                     command, endpoint.c_str());
        return false;
    }
    std::uint64_t value = 0;
    if (!parseUnsigned(command, endpoint.c_str() + colon + 1, value) ||
        value == 0 || value > 65535) {
        std::fprintf(stderr, "profile_tool: bad port in '%s'\n",
                     endpoint.c_str());
        return false;
    }
    host = endpoint.substr(0, colon);
    port = static_cast<std::uint16_t>(value);
    return true;
}

int
cmdReplay(int argc, char **argv)
{
    std::string rec_path;
    std::string endpoint;
    std::string export_jsonl;
    bool inject_mismatch = false;
    serve::ReplayOptions options;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--timing") == 0) {
            options.timing = true;
        } else if (std::strcmp(argv[i], "--loadgen") == 0 &&
                   i + 1 < argc) {
            std::uint64_t value = 0;
            if (!parseUnsigned("--loadgen", argv[++i], value) ||
                value == 0) {
                std::fprintf(stderr,
                             "profile_tool: --loadgen expects a "
                             "positive clone count\n");
                return 2;
            }
            options.loadgen = static_cast<unsigned>(value);
        } else if (std::strcmp(argv[i], "--export-jsonl") == 0 &&
                   i + 1 < argc) {
            export_jsonl = argv[++i];
        } else if (std::strcmp(argv[i], "--inject-mismatch") == 0) {
            inject_mismatch = true;
        } else if (argv[i][0] == '-') {
            static const char *const kFlags[] = {"--timing", "--loadgen",
                                                 "--export-jsonl",
                                                 "--inject-mismatch"};
            return unknownFlag("replay", argv[i], kFlags);
        } else if (rec_path.empty()) {
            rec_path = argv[i];
        } else if (endpoint.empty()) {
            endpoint = argv[i];
        } else {
            std::fprintf(stderr,
                         "profile_tool: replay takes one recording "
                         "and one endpoint, got extra '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    if (rec_path.empty())
        return usage();

    serve::Recording recording;
    std::string error;
    if (!serve::loadRecording(rec_path, recording, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("loaded %zu frames from %s\n", recording.frames.size(),
                rec_path.c_str());

    if (inject_mismatch && !serve::corruptLastChunk(recording)) {
        std::fprintf(stderr,
                     "error: --inject-mismatch found no recorded "
                     "chunk to corrupt\n");
        return 1;
    }

    if (!export_jsonl.empty()) {
        if (!serve::exportRecordingJsonl(recording, export_jsonl,
                                         &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        std::printf("exported %zu frames -> %s\n",
                    recording.frames.size(), export_jsonl.c_str());
        if (endpoint.empty())
            return 0;
    }
    if (endpoint.empty()) {
        std::fprintf(stderr,
                     "profile_tool: replay needs a <host:port> "
                     "endpoint (or --export-jsonl)\n");
        return 2;
    }

    std::string host;
    std::uint16_t port = 0;
    if (!parseEndpoint("replay", endpoint, host, port))
        return 2;

    serve::ReplayResult result;
    if (!serve::replayRecording(recording, host, port, options,
                                result, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    std::printf("replayed %zu connection(s)", result.connections);
    if (options.loadgen > 0)
        std::printf(" x %zu clone(s)", result.clones);
    std::printf(": %llu frames sent, %llu received\n",
                static_cast<unsigned long long>(result.framesSent),
                static_cast<unsigned long long>(result.framesReceived));
    if (options.loadgen > 0) {
        std::printf("chunk latency: p50 %.1f us, p99 %.1f us "
                    "(%zu samples)\n",
                    result.latencyPercentileUs(50.0),
                    result.latencyPercentileUs(99.0),
                    result.chunkLatenciesUs.size());
        return 0;
    }

    std::printf("compared %llu frames (%llu live-counter frames "
                "skipped)\n",
                static_cast<unsigned long long>(result.framesCompared),
                static_cast<unsigned long long>(result.framesSkipped));
    if (result.ok()) {
        std::printf("replay OK: responses byte-identical\n");
        return 0;
    }
    const std::size_t shown = std::min<std::size_t>(
        result.mismatches.size(), 5);
    for (std::size_t i = 0; i < shown; ++i) {
        const serve::ReplayMismatch &m = result.mismatches[i];
        std::fprintf(stderr,
                     "mismatch: conn %llu channel %llu frame %zu: "
                     "%s\n",
                     static_cast<unsigned long long>(m.conn),
                     static_cast<unsigned long long>(m.channel),
                     m.index, m.detail.c_str());
    }
    if (result.mismatches.size() > shown)
        std::fprintf(stderr, "... and %zu more mismatch(es)\n",
                     result.mismatches.size() - shown);
    std::fprintf(stderr, "replay FAILED: %zu mismatch(es)\n",
                 result.mismatches.size());
    return 4;
}

int
cmdStats(const std::string &endpoint)
{
    std::string host;
    std::uint16_t port = 0;
    if (!parseEndpoint("stats", endpoint, host, port))
        return 2;

    serve::Client client;
    std::string error;
    if (!client.connect(host, port, {}, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    serve::ServerStatsBody stats;
    if (!client.serverStats(stats, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    for (const auto &entry : stats.entries)
        std::printf("%s %lld\n", entry.name.c_str(),
                    static_cast<long long>(entry.value));
    return 0;
}

int
cmdFetch(const std::string &endpoint, const std::string &id,
         const std::string &out, std::uint64_t seed,
         std::uint64_t chunk, bool mux)
{
    std::string host;
    std::uint16_t port = 0;
    if (!parseEndpoint("fetch", endpoint, host, port))
        return 2;

    // --mux streams over a multiplexed v2 channel; the default path
    // is the blocking one-session client. Both must produce
    // byte-identical traces (tests/cli/test_cli.sh compares them).
    mem::Trace trace;
    std::string error;
    const bool ok_fetch =
        mux ? serve::fetchTraceMux(host, port, id, seed, trace, chunk,
                                   &error)
            : serve::fetchTrace(host, port, id, seed, trace, chunk,
                                &error);
    if (!ok_fetch) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    const bool csv = out.size() > 4 &&
                     out.compare(out.size() - 4, 4, ".csv") == 0;
    const bool ok =
        csv ? mem::saveTraceCsv(trace, out) : mem::saveTrace(trace, out);
    if (!ok) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("fetched %zu requests from %s/%s -> %s\n",
                trace.size(), endpoint.c_str(), id.c_str(),
                out.c_str());
    return 0;
}

/** Reject an unknown scenario flag, suggesting the closest known one. */
int
unknownScenarioFlag(const char *flag)
{
    static const char *const kFlags[] = {"--report-json", "--report-md",
                                         "--merged-out",
                                         "--skip-isolated"};
    return unknownFlag("scenario", flag, kFlags);
}

int
cmdScenarioRun(int argc, char **argv)
{
    std::string path;
    std::string report_json;
    std::string report_md;
    std::string merged_out;
    bool json_stdout = false;
    scenario::ScenarioOptions options;
    options.threads = g_threads;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--report-json") == 0) {
            // The PATH is optional: bare --report-json prints the
            // JSON report to stdout instead of the markdown summary.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                report_json = argv[++i];
            else
                json_stdout = true;
        } else if (std::strcmp(argv[i], "--report-md") == 0 &&
                   i + 1 < argc) {
            report_md = argv[++i];
        } else if (std::strcmp(argv[i], "--merged-out") == 0 &&
                   i + 1 < argc) {
            merged_out = argv[++i];
        } else if (std::strcmp(argv[i], "--skip-isolated") == 0) {
            options.skipIsolated = true;
        } else if (argv[i][0] == '-') {
            return unknownScenarioFlag(argv[i]);
        } else if (path.empty()) {
            path = argv[i];
        } else {
            std::fprintf(stderr,
                         "profile_tool: scenario run takes one .scn "
                         "file, got '%s' and '%s'\n",
                         path.c_str(), argv[i]);
            return 2;
        }
    }
    if (path.empty())
        return usage();

    scenario::ScenarioSpec spec;
    std::string error;
    if (!scenario::loadScenario(path, spec, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    scenario::ScenarioEngine engine(spec, options);
    scenario::ScenarioReport report;
    if (!engine.run(report, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    if (json_stdout)
        std::printf("%s\n", report.toJson().c_str());
    else
        std::printf("%s", report.toMarkdown().c_str());

    if (!report_json.empty() &&
        !scenario::saveReportJson(report, report_json)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     report_json.c_str());
        return 1;
    }
    if (!report_md.empty() &&
        !scenario::saveReportMarkdown(report, report_md)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     report_md.c_str());
        return 1;
    }
    if (!merged_out.empty()) {
        const mem::Trace &merged = engine.mergedStream();
        const bool csv =
            merged_out.size() > 4 &&
            merged_out.compare(merged_out.size() - 4, 4, ".csv") == 0;
        const bool ok = csv ? mem::saveTraceCsv(merged, merged_out)
                            : mem::saveTrace(merged, merged_out);
        if (!ok) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         merged_out.c_str());
            return 1;
        }
        std::printf("merged stream: %zu requests -> %s\n",
                    merged.size(), merged_out.c_str());
    }
    return 0;
}

int
cmdScenarioList(int argc, char **argv)
{
    if (argc == 0) {
        // Inventory mode: the generators a [device] section can name.
        std::printf("%-16s %-6s %s\n", "generator", "device",
                    "description");
        for (const auto &spec : workloads::deviceTraces())
            std::printf("%-16s %-6s %s\n", spec.name.c_str(),
                        spec.device.c_str(), spec.description.c_str());
        return 0;
    }
    int rc = 0;
    for (int i = 0; i < argc; ++i) {
        if (argv[i][0] == '-')
            return unknownScenarioFlag(argv[i]);
        scenario::ScenarioSpec spec;
        std::string error;
        if (!scenario::loadScenario(argv[i], spec, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            rc = 1;
            continue;
        }
        std::printf("scenario %s (seed %llu, %zu device(s)%s)\n",
                    spec.name.c_str(),
                    static_cast<unsigned long long>(spec.seed),
                    spec.devices.size(),
                    spec.sharedLink ? ", shared link" : "");
        for (const auto &d : spec.devices)
            std::printf("  port %-2u %-10s %-24s requests %-8llu "
                        "clock %u/%u start %llu\n",
                        d.port, d.name.c_str(), d.kind().c_str(),
                        static_cast<unsigned long long>(d.requests),
                        d.clockNum, d.clockDen,
                        static_cast<unsigned long long>(d.startOffset));
        std::printf("  serve id: %s\n",
                    scenario::scenarioId(spec.name).c_str());
    }
    return rc;
}

/** Telemetry output path ("" = telemetry off) and snapshot cadence. */
std::string g_telemetry_path;
std::uint64_t g_telemetry_interval_ms = 0;

/** Trace-event output path ("" = tracing off). */
std::string g_trace_out_path;

int
dispatch(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    if (command == "generate" && argc == 5) {
        return cmdGenerate(argv[2],
                           static_cast<std::size_t>(
                               std::strtoull(argv[3], nullptr, 10)),
                           argv[4]);
    }
    if (command == "profile" && (argc == 4 || argc == 5)) {
        const std::uint64_t cycles =
            argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 500000;
        return cmdProfile(argv[2], argv[3], cycles);
    }
    if (command == "build" && argc >= 4)
        return cmdBuild(argc - 2, argv + 2);
    if (command == "synth" && (argc == 4 || argc == 5)) {
        const std::uint64_t seed =
            argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 1;
        return cmdSynth(argv[2], argv[3], seed);
    }
    if (command == "info" && argc == 3)
        return cmdInfo(argv[2]);
    if (command == "export" && argc == 4)
        return cmdExport(argv[2], argv[3]);
    if (command == "simulate" && (argc == 3 || argc == 4)) {
        const bool gem5_style =
            argc == 4 && std::strcmp(argv[3], "--gem5-stats") == 0;
        return cmdSimulate(argv[2], gem5_style);
    }
    if (command == "compare" && argc == 4)
        return cmdCompare(argv[2], argv[3]);
    if (command == "validate" && argc >= 3)
        return cmdValidate(argc - 2, argv + 2);
    if (command == "reduce" && argc >= 3)
        return cmdReduce(argc - 2, argv + 2);
    if (command == "trace" && argc == 4)
        return cmdTrace(argv[2], argv[3]);
    if (command == "serve" && argc >= 3)
        return cmdServe(argc - 2, argv + 2);
    if (command == "replay" && argc >= 3)
        return cmdReplay(argc - 2, argv + 2);
    if (command == "stats" && argc == 3)
        return cmdStats(argv[2]);
    if (command == "scenario" && argc >= 3) {
        const std::string sub = argv[2];
        if (sub == "run")
            return cmdScenarioRun(argc - 3, argv + 3);
        if (sub == "list")
            return cmdScenarioList(argc - 3, argv + 3);
        std::fprintf(stderr,
                     "profile_tool: unknown scenario subcommand '%s' "
                     "(expected 'run' or 'list')\n",
                     sub.c_str());
        return usage();
    }
    if (command == "fetch") {
        // Strip --mux wherever it appears among the fetch arguments.
        bool mux = false;
        std::vector<const char *> args;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--mux") == 0) {
                mux = true;
            } else if (argv[i][0] == '-') {
                static const char *const kFlags[] = {"--mux"};
                return unknownFlag("fetch", argv[i], kFlags);
            } else {
                args.push_back(argv[i]);
            }
        }
        if (args.size() >= 3 && args.size() <= 5) {
            const std::uint64_t seed =
                args.size() >= 4 ? std::strtoull(args[3], nullptr, 10)
                                 : 1;
            const std::uint64_t chunk =
                args.size() >= 5 ? std::strtoull(args[4], nullptr, 10)
                                 : 0;
            return cmdFetch(args[0], args[1], args[2], seed, chunk,
                            mux);
        }
    }

    // An unknown subcommand and a known one with the wrong arity both
    // end here: say which it was on stderr, then fail with usage.
    static const char *const kCommands[] = {
        "generate", "profile",  "build", "synth", "info",  "export",
        "simulate", "compare",  "validate", "reduce", "trace",
        "serve",    "fetch",    "replay",   "stats", "scenario"};
    bool known = false;
    for (const char *name : kCommands)
        known = known || command == name;
    if (known)
        std::fprintf(stderr,
                     "profile_tool: wrong arguments for '%s'\n",
                     command.c_str());
    else
        std::fprintf(stderr, "profile_tool: unknown command '%s'\n",
                     command.c_str());
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the global flags (in any order) before command dispatch.
    while (argc >= 3 && argv[1][0] == '-') {
        std::uint64_t value = 0;
        if (std::strcmp(argv[1], "--threads") == 0) {
            if (!parseUnsigned("--threads", argv[2], value))
                return 2;
            g_threads = static_cast<unsigned>(value);
        } else if (std::strcmp(argv[1], "--telemetry") == 0) {
            g_telemetry_path = argv[2];
        } else if (std::strcmp(argv[1], "--telemetry-interval") == 0) {
            if (!parseUnsigned("--telemetry-interval", argv[2], value))
                return 2;
            g_telemetry_interval_ms = value;
        } else if (std::strcmp(argv[1], "--trace-out") == 0) {
            g_trace_out_path = argv[2];
        } else if (std::strcmp(argv[1], "--report-json") == 0) {
            g_report_json_path = argv[2];
        } else if (std::strcmp(argv[1], "--attribution") == 0) {
            g_attribution_path = argv[2];
        } else {
            return usage();
        }
        argc -= 2;
        argv += 2;
    }

    // Size the shared pool once, before anything touches it, so every
    // stage (profile build, synthesis, validation, DRAM sharding)
    // honours the same knob.
    util::ThreadPool::setGlobalThreadCount(g_threads);

    // --trace-out: collect trace events for the whole command and
    // write them on the way out (.bin -> binary, else Chrome JSON).
    std::unique_ptr<obs::TraceEventWriter> trace_writer;
    if (!g_trace_out_path.empty()) {
        trace_writer = std::make_unique<obs::TraceEventWriter>();
        obs::setCollector(trace_writer.get());
    }

    std::unique_ptr<telemetry::Exporter> final_exporter;
    std::unique_ptr<telemetry::PeriodicExporter> periodic;
    if (!g_telemetry_path.empty()) {
        telemetry::setEnabled(true);
        auto exporter = telemetry::makeFileExporter(g_telemetry_path);
        if (!exporter->ok()) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         g_telemetry_path.c_str());
            return 1;
        }
        if (g_telemetry_interval_ms > 0) {
            periodic = std::make_unique<telemetry::PeriodicExporter>(
                telemetry::MetricsRegistry::global(),
                std::move(exporter),
                std::chrono::milliseconds(g_telemetry_interval_ms));
        } else {
            final_exporter = std::move(exporter);
        }
    }

    const int rc = dispatch(argc, argv);

    if (trace_writer) {
        obs::setCollector(nullptr);
        const std::string &path = g_trace_out_path;
        const bool binary =
            path.size() > 4 &&
            path.compare(path.size() - 4, 4, ".bin") == 0;
        const bool ok = binary ? trace_writer->saveBinary(path)
                               : trace_writer->saveJson(path);
        if (!ok) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            return rc == 0 ? 1 : rc;
        }
        std::fprintf(stderr,
                     "trace: %zu events (%llu dropped) -> %s\n",
                     trace_writer->size(),
                     static_cast<unsigned long long>(
                         trace_writer->dropped()),
                     path.c_str());
    }

    if (periodic)
        periodic->stop(); // includes the final snapshot
    else if (final_exporter)
        final_exporter->write(
            telemetry::MetricsRegistry::global().snapshot());
    return rc;
}
