# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-sanitize/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-sanitize/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  WORKING_DIRECTORY "/root/repo/build-sanitize/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_study "/root/repo/build-sanitize/examples/cache_study")
set_tests_properties(example_cache_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_soc_memory_study "/root/repo/build-sanitize/examples/soc_memory_study")
set_tests_properties(example_soc_memory_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_ip_soc "/root/repo/build-sanitize/examples/multi_ip_soc")
set_tests_properties(example_multi_ip_soc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ip_feedback "/root/repo/build-sanitize/examples/ip_feedback")
set_tests_properties(example_ip_feedback PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_tool_usage "/root/repo/build-sanitize/examples/profile_tool")
set_tests_properties(example_profile_tool_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
