# Empty compiler generated dependencies file for ip_feedback.
# This may be replaced when dependencies are built.
