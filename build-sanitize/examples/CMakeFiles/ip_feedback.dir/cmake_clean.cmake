file(REMOVE_RECURSE
  "CMakeFiles/ip_feedback.dir/ip_feedback.cpp.o"
  "CMakeFiles/ip_feedback.dir/ip_feedback.cpp.o.d"
  "ip_feedback"
  "ip_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
