# Empty dependencies file for multi_ip_soc.
# This may be replaced when dependencies are built.
