file(REMOVE_RECURSE
  "CMakeFiles/multi_ip_soc.dir/multi_ip_soc.cpp.o"
  "CMakeFiles/multi_ip_soc.dir/multi_ip_soc.cpp.o.d"
  "multi_ip_soc"
  "multi_ip_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_ip_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
