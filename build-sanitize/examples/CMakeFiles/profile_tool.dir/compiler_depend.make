# Empty compiler generated dependencies file for profile_tool.
# This may be replaced when dependencies are built.
