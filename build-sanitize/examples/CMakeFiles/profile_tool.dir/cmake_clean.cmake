file(REMOVE_RECURSE
  "CMakeFiles/profile_tool.dir/profile_tool.cpp.o"
  "CMakeFiles/profile_tool.dir/profile_tool.cpp.o.d"
  "profile_tool"
  "profile_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
