file(REMOVE_RECURSE
  "CMakeFiles/soc_memory_study.dir/soc_memory_study.cpp.o"
  "CMakeFiles/soc_memory_study.dir/soc_memory_study.cpp.o.d"
  "soc_memory_study"
  "soc_memory_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_memory_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
