# Empty dependencies file for soc_memory_study.
# This may be replaced when dependencies are built.
