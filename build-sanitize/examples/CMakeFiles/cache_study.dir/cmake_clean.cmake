file(REMOVE_RECURSE
  "CMakeFiles/cache_study.dir/cache_study.cpp.o"
  "CMakeFiles/cache_study.dir/cache_study.cpp.o.d"
  "cache_study"
  "cache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
