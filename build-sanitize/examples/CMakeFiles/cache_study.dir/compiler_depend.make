# Empty compiler generated dependencies file for cache_study.
# This may be replaced when dependencies are built.
