# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Debug")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-sanitize/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-sanitize/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-sanitize/examples/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-sanitize/bench/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/util/libmocktails_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/mem/libmocktails_mem.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/sim/libmocktails_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/interconnect/libmocktails_interconnect.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/dram/libmocktails_dram.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/cache/libmocktails_cache.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/core/libmocktails_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/baselines/libmocktails_baselines.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/validation/libmocktails_validation.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-sanitize/src/workloads/libmocktails_workloads.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/profile_tool" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/profile_tool")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/profile_tool"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build-sanitize/examples/profile_tool")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/profile_tool" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/profile_tool")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/profile_tool")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/mocktails" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build-sanitize/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
