file(REMOVE_RECURSE
  "CMakeFiles/table2_traces.dir/table2_traces.cpp.o"
  "CMakeFiles/table2_traces.dir/table2_traces.cpp.o.d"
  "table2_traces"
  "table2_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
