# Empty dependencies file for table2_traces.
# This may be replaced when dependencies are built.
