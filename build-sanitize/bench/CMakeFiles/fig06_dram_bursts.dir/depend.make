# Empty dependencies file for fig06_dram_bursts.
# This may be replaced when dependencies are built.
