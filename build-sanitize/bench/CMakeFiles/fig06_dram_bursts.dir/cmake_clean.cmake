file(REMOVE_RECURSE
  "CMakeFiles/fig06_dram_bursts.dir/fig06_dram_bursts.cpp.o"
  "CMakeFiles/fig06_dram_bursts.dir/fig06_dram_bursts.cpp.o.d"
  "fig06_dram_bursts"
  "fig06_dram_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dram_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
