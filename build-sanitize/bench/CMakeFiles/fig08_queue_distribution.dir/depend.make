# Empty dependencies file for fig08_queue_distribution.
# This may be replaced when dependencies are built.
