file(REMOVE_RECURSE
  "CMakeFiles/fig08_queue_distribution.dir/fig08_queue_distribution.cpp.o"
  "CMakeFiles/fig08_queue_distribution.dir/fig08_queue_distribution.cpp.o.d"
  "fig08_queue_distribution"
  "fig08_queue_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_queue_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
