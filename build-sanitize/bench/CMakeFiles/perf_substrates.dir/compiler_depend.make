# Empty compiler generated dependencies file for perf_substrates.
# This may be replaced when dependencies are built.
