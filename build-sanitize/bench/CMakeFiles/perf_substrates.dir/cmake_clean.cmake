file(REMOVE_RECURSE
  "CMakeFiles/perf_substrates.dir/perf_substrates.cpp.o"
  "CMakeFiles/perf_substrates.dir/perf_substrates.cpp.o.d"
  "perf_substrates"
  "perf_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
