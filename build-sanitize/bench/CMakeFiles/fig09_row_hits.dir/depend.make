# Empty dependencies file for fig09_row_hits.
# This may be replaced when dependencies are built.
