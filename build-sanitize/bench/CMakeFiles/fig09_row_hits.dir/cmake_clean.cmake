file(REMOVE_RECURSE
  "CMakeFiles/fig09_row_hits.dir/fig09_row_hits.cpp.o"
  "CMakeFiles/fig09_row_hits.dir/fig09_row_hits.cpp.o.d"
  "fig09_row_hits"
  "fig09_row_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_row_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
