# Empty compiler generated dependencies file for fig13_sensitivity.
# This may be replaced when dependencies are built.
