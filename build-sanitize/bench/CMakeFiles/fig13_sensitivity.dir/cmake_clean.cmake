file(REMOVE_RECURSE
  "CMakeFiles/fig13_sensitivity.dir/fig13_sensitivity.cpp.o"
  "CMakeFiles/fig13_sensitivity.dir/fig13_sensitivity.cpp.o.d"
  "fig13_sensitivity"
  "fig13_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
