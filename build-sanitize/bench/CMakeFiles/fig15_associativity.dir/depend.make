# Empty dependencies file for fig15_associativity.
# This may be replaced when dependencies are built.
