file(REMOVE_RECURSE
  "CMakeFiles/fig15_associativity.dir/fig15_associativity.cpp.o"
  "CMakeFiles/fig15_associativity.dir/fig15_associativity.cpp.o.d"
  "fig15_associativity"
  "fig15_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
