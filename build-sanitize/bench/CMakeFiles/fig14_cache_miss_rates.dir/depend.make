# Empty dependencies file for fig14_cache_miss_rates.
# This may be replaced when dependencies are built.
