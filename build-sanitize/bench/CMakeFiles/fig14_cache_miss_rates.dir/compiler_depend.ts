# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_cache_miss_rates.
