file(REMOVE_RECURSE
  "CMakeFiles/fig14_cache_miss_rates.dir/fig14_cache_miss_rates.cpp.o"
  "CMakeFiles/fig14_cache_miss_rates.dir/fig14_cache_miss_rates.cpp.o.d"
  "fig14_cache_miss_rates"
  "fig14_cache_miss_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cache_miss_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
