# Empty compiler generated dependencies file for fig16_writebacks.
# This may be replaced when dependencies are built.
