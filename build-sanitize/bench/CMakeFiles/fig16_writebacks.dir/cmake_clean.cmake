file(REMOVE_RECURSE
  "CMakeFiles/fig16_writebacks.dir/fig16_writebacks.cpp.o"
  "CMakeFiles/fig16_writebacks.dir/fig16_writebacks.cpp.o.d"
  "fig16_writebacks"
  "fig16_writebacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_writebacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
