
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_request_timing.cpp" "bench/CMakeFiles/fig03_request_timing.dir/fig03_request_timing.cpp.o" "gcc" "bench/CMakeFiles/fig03_request_timing.dir/fig03_request_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/baselines/CMakeFiles/mocktails_baselines.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/validation/CMakeFiles/mocktails_validation.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/dram/CMakeFiles/mocktails_dram.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/interconnect/CMakeFiles/mocktails_interconnect.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sim/CMakeFiles/mocktails_sim.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/cache/CMakeFiles/mocktails_cache.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/mocktails_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/workloads/CMakeFiles/mocktails_workloads.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mem/CMakeFiles/mocktails_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
