file(REMOVE_RECURSE
  "CMakeFiles/fig03_request_timing.dir/fig03_request_timing.cpp.o"
  "CMakeFiles/fig03_request_timing.dir/fig03_request_timing.cpp.o.d"
  "fig03_request_timing"
  "fig03_request_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_request_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
