# Empty compiler generated dependencies file for fig03_request_timing.
# This may be replaced when dependencies are built.
