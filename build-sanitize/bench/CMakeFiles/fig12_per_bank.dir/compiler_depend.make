# Empty compiler generated dependencies file for fig12_per_bank.
# This may be replaced when dependencies are built.
