file(REMOVE_RECURSE
  "CMakeFiles/fig12_per_bank.dir/fig12_per_bank.cpp.o"
  "CMakeFiles/fig12_per_bank.dir/fig12_per_bank.cpp.o.d"
  "fig12_per_bank"
  "fig12_per_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_per_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
