file(REMOVE_RECURSE
  "CMakeFiles/fig11_reads_per_turnaround.dir/fig11_reads_per_turnaround.cpp.o"
  "CMakeFiles/fig11_reads_per_turnaround.dir/fig11_reads_per_turnaround.cpp.o.d"
  "fig11_reads_per_turnaround"
  "fig11_reads_per_turnaround.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reads_per_turnaround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
