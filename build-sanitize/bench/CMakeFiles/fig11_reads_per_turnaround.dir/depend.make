# Empty dependencies file for fig11_reads_per_turnaround.
# This may be replaced when dependencies are built.
