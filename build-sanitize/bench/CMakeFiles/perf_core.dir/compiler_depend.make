# Empty compiler generated dependencies file for perf_core.
# This may be replaced when dependencies are built.
