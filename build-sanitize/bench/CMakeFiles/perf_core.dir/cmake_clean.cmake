file(REMOVE_RECURSE
  "CMakeFiles/perf_core.dir/perf_core.cpp.o"
  "CMakeFiles/perf_core.dir/perf_core.cpp.o.d"
  "perf_core"
  "perf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
