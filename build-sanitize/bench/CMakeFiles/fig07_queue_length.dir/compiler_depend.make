# Empty compiler generated dependencies file for fig07_queue_length.
# This may be replaced when dependencies are built.
