file(REMOVE_RECURSE
  "CMakeFiles/fig07_queue_length.dir/fig07_queue_length.cpp.o"
  "CMakeFiles/fig07_queue_length.dir/fig07_queue_length.cpp.o.d"
  "fig07_queue_length"
  "fig07_queue_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_queue_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
