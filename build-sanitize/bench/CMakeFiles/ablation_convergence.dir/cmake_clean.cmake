file(REMOVE_RECURSE
  "CMakeFiles/ablation_convergence.dir/ablation_convergence.cpp.o"
  "CMakeFiles/ablation_convergence.dir/ablation_convergence.cpp.o.d"
  "ablation_convergence"
  "ablation_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
