# Empty dependencies file for ablation_convergence.
# This may be replaced when dependencies are built.
