# Empty compiler generated dependencies file for fig10_dpu_row_hits.
# This may be replaced when dependencies are built.
