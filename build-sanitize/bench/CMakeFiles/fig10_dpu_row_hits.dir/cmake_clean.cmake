file(REMOVE_RECURSE
  "CMakeFiles/fig10_dpu_row_hits.dir/fig10_dpu_row_hits.cpp.o"
  "CMakeFiles/fig10_dpu_row_hits.dir/fig10_dpu_row_hits.cpp.o.d"
  "fig10_dpu_row_hits"
  "fig10_dpu_row_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dpu_row_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
