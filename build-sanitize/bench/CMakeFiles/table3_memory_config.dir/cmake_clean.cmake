file(REMOVE_RECURSE
  "CMakeFiles/table3_memory_config.dir/table3_memory_config.cpp.o"
  "CMakeFiles/table3_memory_config.dir/table3_memory_config.cpp.o.d"
  "table3_memory_config"
  "table3_memory_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_memory_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
