# Empty compiler generated dependencies file for table3_memory_config.
# This may be replaced when dependencies are built.
