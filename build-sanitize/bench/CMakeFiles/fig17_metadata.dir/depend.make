# Empty dependencies file for fig17_metadata.
# This may be replaced when dependencies are built.
