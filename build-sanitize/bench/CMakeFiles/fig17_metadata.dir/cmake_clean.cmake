file(REMOVE_RECURSE
  "CMakeFiles/fig17_metadata.dir/fig17_metadata.cpp.o"
  "CMakeFiles/fig17_metadata.dir/fig17_metadata.cpp.o.d"
  "fig17_metadata"
  "fig17_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
