file(REMOVE_RECURSE
  "CMakeFiles/ablation_order.dir/ablation_order.cpp.o"
  "CMakeFiles/ablation_order.dir/ablation_order.cpp.o.d"
  "ablation_order"
  "ablation_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
