# Empty dependencies file for ablation_order.
# This may be replaced when dependencies are built.
