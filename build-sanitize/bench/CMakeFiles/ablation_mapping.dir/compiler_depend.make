# Empty compiler generated dependencies file for ablation_mapping.
# This may be replaced when dependencies are built.
