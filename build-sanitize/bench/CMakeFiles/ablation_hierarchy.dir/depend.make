# Empty dependencies file for ablation_hierarchy.
# This may be replaced when dependencies are built.
