file(REMOVE_RECURSE
  "CMakeFiles/ablation_hierarchy.dir/ablation_hierarchy.cpp.o"
  "CMakeFiles/ablation_hierarchy.dir/ablation_hierarchy.cpp.o.d"
  "ablation_hierarchy"
  "ablation_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
