# Empty compiler generated dependencies file for table1_partition_f.
# This may be replaced when dependencies are built.
