file(REMOVE_RECURSE
  "CMakeFiles/table1_partition_f.dir/table1_partition_f.cpp.o"
  "CMakeFiles/table1_partition_f.dir/table1_partition_f.cpp.o.d"
  "table1_partition_f"
  "table1_partition_f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_partition_f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
