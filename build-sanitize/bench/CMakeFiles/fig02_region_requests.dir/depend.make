# Empty dependencies file for fig02_region_requests.
# This may be replaced when dependencies are built.
