file(REMOVE_RECURSE
  "CMakeFiles/fig02_region_requests.dir/fig02_region_requests.cpp.o"
  "CMakeFiles/fig02_region_requests.dir/fig02_region_requests.cpp.o.d"
  "fig02_region_requests"
  "fig02_region_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_region_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
