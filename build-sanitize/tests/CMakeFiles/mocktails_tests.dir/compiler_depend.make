# Empty compiler generated dependencies file for mocktails_tests.
# This may be replaced when dependencies are built.
