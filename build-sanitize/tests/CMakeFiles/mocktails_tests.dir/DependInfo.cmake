
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/test_hrd.cpp" "tests/CMakeFiles/mocktails_tests.dir/baselines/test_hrd.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/baselines/test_hrd.cpp.o.d"
  "/root/repo/tests/baselines/test_reuse.cpp" "tests/CMakeFiles/mocktails_tests.dir/baselines/test_reuse.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/baselines/test_reuse.cpp.o.d"
  "/root/repo/tests/baselines/test_stm.cpp" "tests/CMakeFiles/mocktails_tests.dir/baselines/test_stm.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/baselines/test_stm.cpp.o.d"
  "/root/repo/tests/cache/test_cache.cpp" "tests/CMakeFiles/mocktails_tests.dir/cache/test_cache.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/cache/test_cache.cpp.o.d"
  "/root/repo/tests/cache/test_hierarchy.cpp" "tests/CMakeFiles/mocktails_tests.dir/cache/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/cache/test_hierarchy.cpp.o.d"
  "/root/repo/tests/core/test_features.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_features.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_features.cpp.o.d"
  "/root/repo/tests/core/test_history_markov.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_history_markov.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_history_markov.cpp.o.d"
  "/root/repo/tests/core/test_markov.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_markov.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_markov.cpp.o.d"
  "/root/repo/tests/core/test_mcc.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_mcc.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_mcc.cpp.o.d"
  "/root/repo/tests/core/test_model_generator.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_model_generator.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_model_generator.cpp.o.d"
  "/root/repo/tests/core/test_partition.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_partition.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_partition.cpp.o.d"
  "/root/repo/tests/core/test_profile.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_profile.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_profile.cpp.o.d"
  "/root/repo/tests/core/test_summary.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_summary.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_summary.cpp.o.d"
  "/root/repo/tests/core/test_synthesis.cpp" "tests/CMakeFiles/mocktails_tests.dir/core/test_synthesis.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/core/test_synthesis.cpp.o.d"
  "/root/repo/tests/dram/test_address_map.cpp" "tests/CMakeFiles/mocktails_tests.dir/dram/test_address_map.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/dram/test_address_map.cpp.o.d"
  "/root/repo/tests/dram/test_channel.cpp" "tests/CMakeFiles/mocktails_tests.dir/dram/test_channel.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/dram/test_channel.cpp.o.d"
  "/root/repo/tests/dram/test_config_sweep.cpp" "tests/CMakeFiles/mocktails_tests.dir/dram/test_config_sweep.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/dram/test_config_sweep.cpp.o.d"
  "/root/repo/tests/dram/test_memory_system.cpp" "tests/CMakeFiles/mocktails_tests.dir/dram/test_memory_system.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/dram/test_memory_system.cpp.o.d"
  "/root/repo/tests/dram/test_simulate.cpp" "tests/CMakeFiles/mocktails_tests.dir/dram/test_simulate.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/dram/test_simulate.cpp.o.d"
  "/root/repo/tests/dram/test_soc.cpp" "tests/CMakeFiles/mocktails_tests.dir/dram/test_soc.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/dram/test_soc.cpp.o.d"
  "/root/repo/tests/dram/test_stats_dump.cpp" "tests/CMakeFiles/mocktails_tests.dir/dram/test_stats_dump.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/dram/test_stats_dump.cpp.o.d"
  "/root/repo/tests/dram/test_trace_player.cpp" "tests/CMakeFiles/mocktails_tests.dir/dram/test_trace_player.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/dram/test_trace_player.cpp.o.d"
  "/root/repo/tests/integration/test_decode_robustness.cpp" "tests/CMakeFiles/mocktails_tests.dir/integration/test_decode_robustness.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/integration/test_decode_robustness.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/mocktails_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_properties.cpp" "tests/CMakeFiles/mocktails_tests.dir/integration/test_properties.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/integration/test_properties.cpp.o.d"
  "/root/repo/tests/interconnect/test_arbiter.cpp" "tests/CMakeFiles/mocktails_tests.dir/interconnect/test_arbiter.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/interconnect/test_arbiter.cpp.o.d"
  "/root/repo/tests/interconnect/test_crossbar.cpp" "tests/CMakeFiles/mocktails_tests.dir/interconnect/test_crossbar.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/interconnect/test_crossbar.cpp.o.d"
  "/root/repo/tests/mem/test_burstiness.cpp" "tests/CMakeFiles/mocktails_tests.dir/mem/test_burstiness.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/mem/test_burstiness.cpp.o.d"
  "/root/repo/tests/mem/test_interop.cpp" "tests/CMakeFiles/mocktails_tests.dir/mem/test_interop.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/mem/test_interop.cpp.o.d"
  "/root/repo/tests/mem/test_trace.cpp" "tests/CMakeFiles/mocktails_tests.dir/mem/test_trace.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/mem/test_trace.cpp.o.d"
  "/root/repo/tests/mem/test_trace_io.cpp" "tests/CMakeFiles/mocktails_tests.dir/mem/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/mem/test_trace_io.cpp.o.d"
  "/root/repo/tests/mem/test_trace_ops.cpp" "tests/CMakeFiles/mocktails_tests.dir/mem/test_trace_ops.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/mem/test_trace_ops.cpp.o.d"
  "/root/repo/tests/mem/test_trace_stats.cpp" "tests/CMakeFiles/mocktails_tests.dir/mem/test_trace_stats.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/mem/test_trace_stats.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/mocktails_tests.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/util/test_codec.cpp" "tests/CMakeFiles/mocktails_tests.dir/util/test_codec.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/util/test_codec.cpp.o.d"
  "/root/repo/tests/util/test_compress.cpp" "tests/CMakeFiles/mocktails_tests.dir/util/test_compress.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/util/test_compress.cpp.o.d"
  "/root/repo/tests/util/test_histogram.cpp" "tests/CMakeFiles/mocktails_tests.dir/util/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/util/test_histogram.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/mocktails_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/mocktails_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/CMakeFiles/mocktails_tests.dir/util/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/util/test_thread_pool.cpp.o.d"
  "/root/repo/tests/validation/test_validate.cpp" "tests/CMakeFiles/mocktails_tests.dir/validation/test_validate.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/validation/test_validate.cpp.o.d"
  "/root/repo/tests/workloads/test_devices.cpp" "tests/CMakeFiles/mocktails_tests.dir/workloads/test_devices.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/workloads/test_devices.cpp.o.d"
  "/root/repo/tests/workloads/test_spec.cpp" "tests/CMakeFiles/mocktails_tests.dir/workloads/test_spec.cpp.o" "gcc" "tests/CMakeFiles/mocktails_tests.dir/workloads/test_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/baselines/CMakeFiles/mocktails_baselines.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/validation/CMakeFiles/mocktails_validation.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/dram/CMakeFiles/mocktails_dram.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/interconnect/CMakeFiles/mocktails_interconnect.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sim/CMakeFiles/mocktails_sim.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/cache/CMakeFiles/mocktails_cache.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/mocktails_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/workloads/CMakeFiles/mocktails_workloads.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mem/CMakeFiles/mocktails_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
