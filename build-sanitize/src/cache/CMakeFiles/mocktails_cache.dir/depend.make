# Empty dependencies file for mocktails_cache.
# This may be replaced when dependencies are built.
