
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cpp" "src/cache/CMakeFiles/mocktails_cache.dir/cache.cpp.o" "gcc" "src/cache/CMakeFiles/mocktails_cache.dir/cache.cpp.o.d"
  "/root/repo/src/cache/hierarchy.cpp" "src/cache/CMakeFiles/mocktails_cache.dir/hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/mocktails_cache.dir/hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/mem/CMakeFiles/mocktails_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
