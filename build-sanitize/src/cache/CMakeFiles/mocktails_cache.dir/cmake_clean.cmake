file(REMOVE_RECURSE
  "CMakeFiles/mocktails_cache.dir/cache.cpp.o"
  "CMakeFiles/mocktails_cache.dir/cache.cpp.o.d"
  "CMakeFiles/mocktails_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/mocktails_cache.dir/hierarchy.cpp.o.d"
  "libmocktails_cache.a"
  "libmocktails_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
