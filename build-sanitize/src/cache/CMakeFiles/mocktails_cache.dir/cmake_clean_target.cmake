file(REMOVE_RECURSE
  "libmocktails_cache.a"
)
