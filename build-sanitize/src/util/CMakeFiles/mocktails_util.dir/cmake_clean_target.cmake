file(REMOVE_RECURSE
  "libmocktails_util.a"
)
