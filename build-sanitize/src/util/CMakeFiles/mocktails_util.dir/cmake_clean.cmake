file(REMOVE_RECURSE
  "CMakeFiles/mocktails_util.dir/codec.cpp.o"
  "CMakeFiles/mocktails_util.dir/codec.cpp.o.d"
  "CMakeFiles/mocktails_util.dir/compress.cpp.o"
  "CMakeFiles/mocktails_util.dir/compress.cpp.o.d"
  "CMakeFiles/mocktails_util.dir/histogram.cpp.o"
  "CMakeFiles/mocktails_util.dir/histogram.cpp.o.d"
  "CMakeFiles/mocktails_util.dir/stats.cpp.o"
  "CMakeFiles/mocktails_util.dir/stats.cpp.o.d"
  "CMakeFiles/mocktails_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mocktails_util.dir/thread_pool.cpp.o.d"
  "libmocktails_util.a"
  "libmocktails_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
