# Empty dependencies file for mocktails_util.
# This may be replaced when dependencies are built.
