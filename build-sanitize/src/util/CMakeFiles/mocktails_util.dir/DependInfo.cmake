
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/codec.cpp" "src/util/CMakeFiles/mocktails_util.dir/codec.cpp.o" "gcc" "src/util/CMakeFiles/mocktails_util.dir/codec.cpp.o.d"
  "/root/repo/src/util/compress.cpp" "src/util/CMakeFiles/mocktails_util.dir/compress.cpp.o" "gcc" "src/util/CMakeFiles/mocktails_util.dir/compress.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/util/CMakeFiles/mocktails_util.dir/histogram.cpp.o" "gcc" "src/util/CMakeFiles/mocktails_util.dir/histogram.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/mocktails_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/mocktails_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/mocktails_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/mocktails_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
