# Empty compiler generated dependencies file for mocktails_sim.
# This may be replaced when dependencies are built.
