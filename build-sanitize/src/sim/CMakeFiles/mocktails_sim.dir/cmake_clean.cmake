file(REMOVE_RECURSE
  "CMakeFiles/mocktails_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mocktails_sim.dir/event_queue.cpp.o.d"
  "libmocktails_sim.a"
  "libmocktails_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
