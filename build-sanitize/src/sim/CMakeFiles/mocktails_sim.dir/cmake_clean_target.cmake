file(REMOVE_RECURSE
  "libmocktails_sim.a"
)
