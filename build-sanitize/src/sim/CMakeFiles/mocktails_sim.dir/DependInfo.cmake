
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/mocktails_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/mocktails_sim.dir/event_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/mem/CMakeFiles/mocktails_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
