file(REMOVE_RECURSE
  "libmocktails_interconnect.a"
)
