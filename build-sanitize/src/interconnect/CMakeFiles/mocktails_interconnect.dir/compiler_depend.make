# Empty compiler generated dependencies file for mocktails_interconnect.
# This may be replaced when dependencies are built.
