file(REMOVE_RECURSE
  "CMakeFiles/mocktails_interconnect.dir/arbiter.cpp.o"
  "CMakeFiles/mocktails_interconnect.dir/arbiter.cpp.o.d"
  "CMakeFiles/mocktails_interconnect.dir/crossbar.cpp.o"
  "CMakeFiles/mocktails_interconnect.dir/crossbar.cpp.o.d"
  "libmocktails_interconnect.a"
  "libmocktails_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
