# CMake generated Testfile for 
# Source directory: /root/repo/src/interconnect
# Build directory: /root/repo/build-sanitize/src/interconnect
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
