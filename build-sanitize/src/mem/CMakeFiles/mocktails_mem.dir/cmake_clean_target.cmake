file(REMOVE_RECURSE
  "libmocktails_mem.a"
)
