file(REMOVE_RECURSE
  "CMakeFiles/mocktails_mem.dir/burstiness.cpp.o"
  "CMakeFiles/mocktails_mem.dir/burstiness.cpp.o.d"
  "CMakeFiles/mocktails_mem.dir/interop.cpp.o"
  "CMakeFiles/mocktails_mem.dir/interop.cpp.o.d"
  "CMakeFiles/mocktails_mem.dir/trace.cpp.o"
  "CMakeFiles/mocktails_mem.dir/trace.cpp.o.d"
  "CMakeFiles/mocktails_mem.dir/trace_io.cpp.o"
  "CMakeFiles/mocktails_mem.dir/trace_io.cpp.o.d"
  "CMakeFiles/mocktails_mem.dir/trace_ops.cpp.o"
  "CMakeFiles/mocktails_mem.dir/trace_ops.cpp.o.d"
  "CMakeFiles/mocktails_mem.dir/trace_stats.cpp.o"
  "CMakeFiles/mocktails_mem.dir/trace_stats.cpp.o.d"
  "libmocktails_mem.a"
  "libmocktails_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
