# Empty dependencies file for mocktails_mem.
# This may be replaced when dependencies are built.
