
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/burstiness.cpp" "src/mem/CMakeFiles/mocktails_mem.dir/burstiness.cpp.o" "gcc" "src/mem/CMakeFiles/mocktails_mem.dir/burstiness.cpp.o.d"
  "/root/repo/src/mem/interop.cpp" "src/mem/CMakeFiles/mocktails_mem.dir/interop.cpp.o" "gcc" "src/mem/CMakeFiles/mocktails_mem.dir/interop.cpp.o.d"
  "/root/repo/src/mem/trace.cpp" "src/mem/CMakeFiles/mocktails_mem.dir/trace.cpp.o" "gcc" "src/mem/CMakeFiles/mocktails_mem.dir/trace.cpp.o.d"
  "/root/repo/src/mem/trace_io.cpp" "src/mem/CMakeFiles/mocktails_mem.dir/trace_io.cpp.o" "gcc" "src/mem/CMakeFiles/mocktails_mem.dir/trace_io.cpp.o.d"
  "/root/repo/src/mem/trace_ops.cpp" "src/mem/CMakeFiles/mocktails_mem.dir/trace_ops.cpp.o" "gcc" "src/mem/CMakeFiles/mocktails_mem.dir/trace_ops.cpp.o.d"
  "/root/repo/src/mem/trace_stats.cpp" "src/mem/CMakeFiles/mocktails_mem.dir/trace_stats.cpp.o" "gcc" "src/mem/CMakeFiles/mocktails_mem.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
