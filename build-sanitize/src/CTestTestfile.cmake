# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-sanitize/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("mem")
subdirs("sim")
subdirs("interconnect")
subdirs("dram")
subdirs("cache")
subdirs("core")
subdirs("baselines")
subdirs("validation")
subdirs("workloads")
