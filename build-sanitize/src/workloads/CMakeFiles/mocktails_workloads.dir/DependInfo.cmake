
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/builder.cpp" "src/workloads/CMakeFiles/mocktails_workloads.dir/builder.cpp.o" "gcc" "src/workloads/CMakeFiles/mocktails_workloads.dir/builder.cpp.o.d"
  "/root/repo/src/workloads/cpu.cpp" "src/workloads/CMakeFiles/mocktails_workloads.dir/cpu.cpp.o" "gcc" "src/workloads/CMakeFiles/mocktails_workloads.dir/cpu.cpp.o.d"
  "/root/repo/src/workloads/dpu.cpp" "src/workloads/CMakeFiles/mocktails_workloads.dir/dpu.cpp.o" "gcc" "src/workloads/CMakeFiles/mocktails_workloads.dir/dpu.cpp.o.d"
  "/root/repo/src/workloads/gpu.cpp" "src/workloads/CMakeFiles/mocktails_workloads.dir/gpu.cpp.o" "gcc" "src/workloads/CMakeFiles/mocktails_workloads.dir/gpu.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/mocktails_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/mocktails_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/spec.cpp" "src/workloads/CMakeFiles/mocktails_workloads.dir/spec.cpp.o" "gcc" "src/workloads/CMakeFiles/mocktails_workloads.dir/spec.cpp.o.d"
  "/root/repo/src/workloads/vpu.cpp" "src/workloads/CMakeFiles/mocktails_workloads.dir/vpu.cpp.o" "gcc" "src/workloads/CMakeFiles/mocktails_workloads.dir/vpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/mem/CMakeFiles/mocktails_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
