file(REMOVE_RECURSE
  "libmocktails_workloads.a"
)
