# Empty compiler generated dependencies file for mocktails_workloads.
# This may be replaced when dependencies are built.
