file(REMOVE_RECURSE
  "CMakeFiles/mocktails_workloads.dir/builder.cpp.o"
  "CMakeFiles/mocktails_workloads.dir/builder.cpp.o.d"
  "CMakeFiles/mocktails_workloads.dir/cpu.cpp.o"
  "CMakeFiles/mocktails_workloads.dir/cpu.cpp.o.d"
  "CMakeFiles/mocktails_workloads.dir/dpu.cpp.o"
  "CMakeFiles/mocktails_workloads.dir/dpu.cpp.o.d"
  "CMakeFiles/mocktails_workloads.dir/gpu.cpp.o"
  "CMakeFiles/mocktails_workloads.dir/gpu.cpp.o.d"
  "CMakeFiles/mocktails_workloads.dir/registry.cpp.o"
  "CMakeFiles/mocktails_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/mocktails_workloads.dir/spec.cpp.o"
  "CMakeFiles/mocktails_workloads.dir/spec.cpp.o.d"
  "CMakeFiles/mocktails_workloads.dir/vpu.cpp.o"
  "CMakeFiles/mocktails_workloads.dir/vpu.cpp.o.d"
  "libmocktails_workloads.a"
  "libmocktails_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
