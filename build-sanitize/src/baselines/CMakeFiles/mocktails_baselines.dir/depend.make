# Empty dependencies file for mocktails_baselines.
# This may be replaced when dependencies are built.
