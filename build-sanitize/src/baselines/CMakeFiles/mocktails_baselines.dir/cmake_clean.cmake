file(REMOVE_RECURSE
  "CMakeFiles/mocktails_baselines.dir/hrd.cpp.o"
  "CMakeFiles/mocktails_baselines.dir/hrd.cpp.o.d"
  "CMakeFiles/mocktails_baselines.dir/reuse.cpp.o"
  "CMakeFiles/mocktails_baselines.dir/reuse.cpp.o.d"
  "CMakeFiles/mocktails_baselines.dir/stm.cpp.o"
  "CMakeFiles/mocktails_baselines.dir/stm.cpp.o.d"
  "libmocktails_baselines.a"
  "libmocktails_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
