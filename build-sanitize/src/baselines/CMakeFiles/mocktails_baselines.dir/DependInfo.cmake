
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/hrd.cpp" "src/baselines/CMakeFiles/mocktails_baselines.dir/hrd.cpp.o" "gcc" "src/baselines/CMakeFiles/mocktails_baselines.dir/hrd.cpp.o.d"
  "/root/repo/src/baselines/reuse.cpp" "src/baselines/CMakeFiles/mocktails_baselines.dir/reuse.cpp.o" "gcc" "src/baselines/CMakeFiles/mocktails_baselines.dir/reuse.cpp.o.d"
  "/root/repo/src/baselines/stm.cpp" "src/baselines/CMakeFiles/mocktails_baselines.dir/stm.cpp.o" "gcc" "src/baselines/CMakeFiles/mocktails_baselines.dir/stm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/core/CMakeFiles/mocktails_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mem/CMakeFiles/mocktails_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
