file(REMOVE_RECURSE
  "libmocktails_baselines.a"
)
