file(REMOVE_RECURSE
  "CMakeFiles/mocktails_core.dir/features.cpp.o"
  "CMakeFiles/mocktails_core.dir/features.cpp.o.d"
  "CMakeFiles/mocktails_core.dir/history_markov.cpp.o"
  "CMakeFiles/mocktails_core.dir/history_markov.cpp.o.d"
  "CMakeFiles/mocktails_core.dir/markov.cpp.o"
  "CMakeFiles/mocktails_core.dir/markov.cpp.o.d"
  "CMakeFiles/mocktails_core.dir/mcc.cpp.o"
  "CMakeFiles/mocktails_core.dir/mcc.cpp.o.d"
  "CMakeFiles/mocktails_core.dir/model_generator.cpp.o"
  "CMakeFiles/mocktails_core.dir/model_generator.cpp.o.d"
  "CMakeFiles/mocktails_core.dir/partition.cpp.o"
  "CMakeFiles/mocktails_core.dir/partition.cpp.o.d"
  "CMakeFiles/mocktails_core.dir/profile.cpp.o"
  "CMakeFiles/mocktails_core.dir/profile.cpp.o.d"
  "CMakeFiles/mocktails_core.dir/summary.cpp.o"
  "CMakeFiles/mocktails_core.dir/summary.cpp.o.d"
  "CMakeFiles/mocktails_core.dir/synthesis.cpp.o"
  "CMakeFiles/mocktails_core.dir/synthesis.cpp.o.d"
  "libmocktails_core.a"
  "libmocktails_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
