# Empty dependencies file for mocktails_core.
# This may be replaced when dependencies are built.
