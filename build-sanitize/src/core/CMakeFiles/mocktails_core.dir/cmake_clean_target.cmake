file(REMOVE_RECURSE
  "libmocktails_core.a"
)
