
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/mocktails_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/features.cpp.o.d"
  "/root/repo/src/core/history_markov.cpp" "src/core/CMakeFiles/mocktails_core.dir/history_markov.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/history_markov.cpp.o.d"
  "/root/repo/src/core/markov.cpp" "src/core/CMakeFiles/mocktails_core.dir/markov.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/markov.cpp.o.d"
  "/root/repo/src/core/mcc.cpp" "src/core/CMakeFiles/mocktails_core.dir/mcc.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/mcc.cpp.o.d"
  "/root/repo/src/core/model_generator.cpp" "src/core/CMakeFiles/mocktails_core.dir/model_generator.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/model_generator.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/mocktails_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/mocktails_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/summary.cpp" "src/core/CMakeFiles/mocktails_core.dir/summary.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/summary.cpp.o.d"
  "/root/repo/src/core/synthesis.cpp" "src/core/CMakeFiles/mocktails_core.dir/synthesis.cpp.o" "gcc" "src/core/CMakeFiles/mocktails_core.dir/synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/mem/CMakeFiles/mocktails_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
