src/dram/CMakeFiles/mocktails_dram.dir/address_map.cpp.o: \
 /root/repo/src/dram/address_map.cpp /usr/include/stdc-predef.h \
 /root/repo/src/dram/address_map.hpp /usr/include/c++/12/cstdint \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /root/repo/src/dram/config.hpp /root/repo/src/mem/request.hpp \
 /usr/include/c++/12/bit /usr/include/c++/12/type_traits \
 /usr/include/c++/12/ext/numeric_traits.h \
 /usr/include/c++/12/bits/cpp_type_traits.h \
 /usr/include/c++/12/ext/type_traits.h /usr/include/c++/12/cassert \
 /usr/include/assert.h
