file(REMOVE_RECURSE
  "CMakeFiles/mocktails_dram.dir/address_map.cpp.o"
  "CMakeFiles/mocktails_dram.dir/address_map.cpp.o.d"
  "CMakeFiles/mocktails_dram.dir/channel.cpp.o"
  "CMakeFiles/mocktails_dram.dir/channel.cpp.o.d"
  "CMakeFiles/mocktails_dram.dir/memory_system.cpp.o"
  "CMakeFiles/mocktails_dram.dir/memory_system.cpp.o.d"
  "CMakeFiles/mocktails_dram.dir/simulate.cpp.o"
  "CMakeFiles/mocktails_dram.dir/simulate.cpp.o.d"
  "CMakeFiles/mocktails_dram.dir/soc.cpp.o"
  "CMakeFiles/mocktails_dram.dir/soc.cpp.o.d"
  "CMakeFiles/mocktails_dram.dir/stats_dump.cpp.o"
  "CMakeFiles/mocktails_dram.dir/stats_dump.cpp.o.d"
  "CMakeFiles/mocktails_dram.dir/trace_player.cpp.o"
  "CMakeFiles/mocktails_dram.dir/trace_player.cpp.o.d"
  "libmocktails_dram.a"
  "libmocktails_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
