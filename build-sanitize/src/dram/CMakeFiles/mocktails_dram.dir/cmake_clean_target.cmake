file(REMOVE_RECURSE
  "libmocktails_dram.a"
)
