
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/address_map.cpp" "src/dram/CMakeFiles/mocktails_dram.dir/address_map.cpp.o" "gcc" "src/dram/CMakeFiles/mocktails_dram.dir/address_map.cpp.o.d"
  "/root/repo/src/dram/channel.cpp" "src/dram/CMakeFiles/mocktails_dram.dir/channel.cpp.o" "gcc" "src/dram/CMakeFiles/mocktails_dram.dir/channel.cpp.o.d"
  "/root/repo/src/dram/memory_system.cpp" "src/dram/CMakeFiles/mocktails_dram.dir/memory_system.cpp.o" "gcc" "src/dram/CMakeFiles/mocktails_dram.dir/memory_system.cpp.o.d"
  "/root/repo/src/dram/simulate.cpp" "src/dram/CMakeFiles/mocktails_dram.dir/simulate.cpp.o" "gcc" "src/dram/CMakeFiles/mocktails_dram.dir/simulate.cpp.o.d"
  "/root/repo/src/dram/soc.cpp" "src/dram/CMakeFiles/mocktails_dram.dir/soc.cpp.o" "gcc" "src/dram/CMakeFiles/mocktails_dram.dir/soc.cpp.o.d"
  "/root/repo/src/dram/stats_dump.cpp" "src/dram/CMakeFiles/mocktails_dram.dir/stats_dump.cpp.o" "gcc" "src/dram/CMakeFiles/mocktails_dram.dir/stats_dump.cpp.o.d"
  "/root/repo/src/dram/trace_player.cpp" "src/dram/CMakeFiles/mocktails_dram.dir/trace_player.cpp.o" "gcc" "src/dram/CMakeFiles/mocktails_dram.dir/trace_player.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/mem/CMakeFiles/mocktails_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sim/CMakeFiles/mocktails_sim.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/mocktails_util.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/interconnect/CMakeFiles/mocktails_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
