# Empty dependencies file for mocktails_dram.
# This may be replaced when dependencies are built.
