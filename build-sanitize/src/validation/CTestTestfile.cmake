# CMake generated Testfile for 
# Source directory: /root/repo/src/validation
# Build directory: /root/repo/build-sanitize/src/validation
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
