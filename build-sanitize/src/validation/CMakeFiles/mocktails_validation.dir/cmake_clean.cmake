file(REMOVE_RECURSE
  "CMakeFiles/mocktails_validation.dir/validate.cpp.o"
  "CMakeFiles/mocktails_validation.dir/validate.cpp.o.d"
  "libmocktails_validation.a"
  "libmocktails_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocktails_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
