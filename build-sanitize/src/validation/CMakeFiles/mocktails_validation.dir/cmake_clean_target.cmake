file(REMOVE_RECURSE
  "libmocktails_validation.a"
)
