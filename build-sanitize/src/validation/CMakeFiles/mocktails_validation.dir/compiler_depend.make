# Empty compiler generated dependencies file for mocktails_validation.
# This may be replaced when dependencies are built.
