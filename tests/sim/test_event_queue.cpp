#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace
{

using namespace mocktails::sim;

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, ExecutesInTickOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CountsScheduledAndExecutedEvents)
{
    EventQueue q;
    EXPECT_EQ(q.scheduledCount(), 0u);
    EXPECT_EQ(q.executedCount(), 0u);
    q.schedule(1, [] {});
    q.schedule(2, [&] { q.scheduleIn(1, [] {}); });
    EXPECT_EQ(q.scheduledCount(), 2u);
    EXPECT_EQ(q.executedCount(), 0u);
    q.runUntil(2);
    EXPECT_EQ(q.scheduledCount(), 3u); // includes the nested schedule
    EXPECT_EQ(q.executedCount(), 2u);
    q.run();
    EXPECT_EQ(q.executedCount(), q.scheduledCount());
}

TEST(EventQueue, SameTickFifoHoldsForNestedSchedules)
{
    // Events scheduled *during* execution at the same tick run after
    // every already-queued same-tick event, preserving FIFO by
    // scheduling order.
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] {
        order.push_back(0);
        q.schedule(5, [&] { order.push_back(3); });
    });
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, NowAdvancesDuringExecution)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(42, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        ++count;
        if (count < 5)
            q.scheduleIn(10, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, ScheduleAtCurrentTickRunsThisPass)
{
    EventQueue q;
    bool ran = false;
    q.schedule(7, [&] { q.schedule(7, [&] { ran = true; }); });
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<Tick> fired;
    for (Tick t : {5u, 10u, 15u, 20u})
        q.schedule(t, [&, t] { fired.push_back(t); });
    q.runUntil(12);
    EXPECT_EQ(fired, (std::vector<Tick>{5, 10}));
    EXPECT_EQ(q.now(), 12u);
    EXPECT_EQ(q.pending(), 2u);
    q.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, PendingCount)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, DeviceBandRunsAfterTransportWithinTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, kBandDevice, [&] { order.push_back(2); });
    q.schedule(5, kBandTransport, [&] { order.push_back(0); });
    q.schedule(5, kBandDevice, [&] { order.push_back(3); });
    q.schedule(5, [&] { order.push_back(1); }); // transport default
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, BandsDoNotReorderAcrossTicks)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, kBandTransport, [&] { order.push_back(1); });
    q.schedule(4, kBandDevice, [&] { order.push_back(0); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, TransportCanScheduleDeviceAtCurrentTick)
{
    // The whole point of the bands: an injection-side event may
    // schedule channel-internal work for the same tick and it still
    // runs this pass, after every remaining transport event.
    EventQueue q;
    std::vector<int> order;
    q.schedule(7, kBandTransport, [&] {
        order.push_back(0);
        q.schedule(7, kBandDevice, [&] { order.push_back(2); });
    });
    q.schedule(7, kBandTransport, [&] { order.push_back(1); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInWithBand)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, kBandTransport, [&] {
        q.scheduleIn(0, kBandDevice, [&] { order.push_back(1); });
        order.push_back(0);
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, LargeCapturesTakeTheHeapPath)
{
    // Captures beyond the inline small-buffer budget must still move
    // and fire correctly (exercises EventCallback's heap fallback).
    EventQueue q;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i + 1;
    std::uint64_t sum = 0;
    q.schedule(3, [payload, &sum] {
        for (const std::uint64_t v : payload)
            sum += v;
    });
    q.run();
    EXPECT_EQ(sum, 136u);
}

} // namespace
