#include "baselines/stm.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/model_generator.hpp"
#include "core/profile.hpp"
#include "core/synthesis.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::baselines;

TEST(StmOpModel, ExactCountsUnderStrictConvergence)
{
    StmOpModel model(7, 3);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        util::Rng rng(seed);
        const auto sampler = model.makeSampler(rng);
        int reads = 0, writes = 0;
        for (int i = 0; i < 10; ++i) {
            if (sampler->next() == 0)
                ++reads;
            else
                ++writes;
        }
        EXPECT_EQ(reads, 7);
        EXPECT_EQ(writes, 3);
    }
}

TEST(StmOpModel, AllReads)
{
    StmOpModel model(5, 0);
    util::Rng rng(1);
    const auto sampler = model.makeSampler(rng);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(sampler->next(), 0);
}

TEST(StmOpModel, IsMemoryless)
{
    // Unlike a Markov chain, STM cannot capture strict alternation:
    // over many seeds some generated orders differ from R W R W...
    std::vector<std::int64_t> pattern = {0, 1, 0, 1, 0, 1, 0, 1};
    StmOpModel model(4, 4);
    int exact_matches = 0;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        util::Rng rng(seed);
        const auto sampler = model.makeSampler(rng);
        bool match = true;
        for (const std::int64_t expected : pattern)
            match &= (sampler->next() == expected);
        exact_matches += match;
    }
    EXPECT_LT(exact_matches, 50);
}

TEST(StmStrideModel, ExactMultisetUnderStrictConvergence)
{
    std::vector<std::int64_t> strides = {64, 64, 64, -264, 64,
                                         64, 128, 64, 64};
    StmStrideModel model(strides, StmConfig{});
    std::map<std::int64_t, int> expected;
    for (const auto s : strides)
        ++expected[s];

    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        util::Rng rng(seed);
        const auto sampler = model.makeSampler(rng);
        std::map<std::int64_t, int> got;
        for (std::size_t i = 0; i < strides.size(); ++i)
            ++got[sampler->next()];
        EXPECT_EQ(got, expected) << "seed " << seed;
    }
}

TEST(StmStrideModel, CapturesLongPeriodicPattern)
{
    // Period-3 stride pattern: 8-deep history captures it perfectly,
    // and with strict convergence the sequence is reproduced exactly.
    std::vector<std::int64_t> strides;
    for (int i = 0; i < 30; ++i) {
        strides.push_back(64);
        strides.push_back(64);
        strides.push_back(-128);
    }
    StmStrideModel model(strides, StmConfig{});
    util::Rng rng(5);
    const auto sampler = model.makeSampler(rng);
    for (std::size_t i = 0; i < strides.size(); ++i)
        EXPECT_EQ(sampler->next(), strides[i]) << "at " << i;
}

TEST(StmStrideModel, RowCapacityEnforced)
{
    // Many distinct histories: the table must not exceed 32 rows.
    std::vector<std::int64_t> strides;
    util::Rng rng(6);
    for (int i = 0; i < 500; ++i)
        strides.push_back(rng.between(-100, 100) * 8);
    StmConfig config;
    StmStrideModel model(strides, config);
    EXPECT_LE(model.numRows(), config.maxRows);
}

TEST(StmStrideModel, SequenceLengthMatches)
{
    std::vector<std::int64_t> strides = {1, 2, 3, 4, 5};
    StmStrideModel model(strides, StmConfig{});
    EXPECT_EQ(model.sequenceLength(), 5u);
}

TEST(StmHooks, BuildProfileWithStmLeaves)
{
    mem::Trace trace("t", "GPU");
    util::Rng rng(7);
    mem::Tick tick = 0;
    for (int i = 0; i < 2000; ++i) {
        tick += rng.below(20);
        trace.add(tick, 0x1000 + (rng.below(1 << 16) & ~mem::Addr{63}),
                  64, rng.chance(0.4) ? mem::Op::Write : mem::Op::Read);
    }
    const core::Profile p = core::buildProfile(
        trace, core::PartitionConfig::twoLevelTs(5000), stmHooks());

    bool found_stm_op = false;
    for (const auto &leaf : p.leaves) {
        if (leaf.op && leaf.op->tag() == StmOpModel::kTag)
            found_stm_op = true;
        if (leaf.stride)
            EXPECT_EQ(leaf.stride->tag(), StmStrideModel::kTag);
        // Delta time and size still use McC models.
        if (leaf.size) {
            EXPECT_TRUE(leaf.size->tag() == core::ConstantModel::kTag ||
                        leaf.size->tag() == core::MarkovModel::kTag);
        }
    }
    EXPECT_TRUE(found_stm_op);

    // Synthesis with STM leaves preserves read/write counts.
    std::uint64_t reads = 0;
    for (const auto &r : trace)
        reads += r.isRead();
    const mem::Trace synth = core::synthesize(p, 3);
    std::uint64_t synth_reads = 0;
    for (const auto &r : synth)
        synth_reads += r.isRead();
    EXPECT_EQ(synth.size(), trace.size());
    EXPECT_EQ(synth_reads, reads);
}

TEST(StmCodec, ProfileWithStmModelsRoundTrips)
{
    registerStmModels();
    mem::Trace trace("t", "DPU");
    for (int i = 0; i < 100; ++i) {
        trace.add(static_cast<mem::Tick>(i * 3),
                  0x100 + static_cast<mem::Addr>((i % 7) * 64), 64,
                  i % 3 ? mem::Op::Read : mem::Op::Write);
    }
    const core::Profile p = core::buildProfile(
        trace, core::PartitionConfig::twoLevelTs(1000), stmHooks());

    core::Profile decoded;
    ASSERT_TRUE(core::Profile::decode(p.encode(), decoded));
    ASSERT_EQ(decoded.leaves.size(), p.leaves.size());
    for (std::size_t i = 0; i < p.leaves.size(); ++i) {
        if (p.leaves[i].stride) {
            ASSERT_NE(decoded.leaves[i].stride, nullptr);
            EXPECT_EQ(decoded.leaves[i].stride->tag(),
                      p.leaves[i].stride->tag());
        }
    }
    // Decoded profile synthesises the same request count.
    EXPECT_EQ(core::synthesize(decoded, 1).size(), trace.size());
}

} // namespace
