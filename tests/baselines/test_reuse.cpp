#include "baselines/reuse.hpp"

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "util/rng.hpp"

namespace
{

using namespace mocktails::baselines;

/** Naive O(n^2) LRU stack distance for cross-checking. */
std::vector<std::int64_t>
naiveReuse(const std::vector<std::uint64_t> &keys)
{
    std::list<std::uint64_t> stack;
    std::vector<std::int64_t> out;
    for (const auto key : keys) {
        std::int64_t depth = 0;
        bool found = false;
        for (auto it = stack.begin(); it != stack.end(); ++it, ++depth) {
            if (*it == key) {
                out.push_back(depth);
                stack.erase(it);
                found = true;
                break;
            }
        }
        if (!found)
            out.push_back(reuseInfinite);
        stack.push_front(key);
    }
    return out;
}

TEST(ReuseDistance, FirstTouchIsInfinite)
{
    ReuseDistanceTracker tracker;
    EXPECT_EQ(tracker.access(1), reuseInfinite);
    EXPECT_EQ(tracker.access(2), reuseInfinite);
}

TEST(ReuseDistance, ImmediateReuseIsZero)
{
    ReuseDistanceTracker tracker;
    tracker.access(1);
    EXPECT_EQ(tracker.access(1), 0);
}

TEST(ReuseDistance, CountsUniqueIntermediates)
{
    ReuseDistanceTracker tracker;
    tracker.access(1);
    tracker.access(2);
    tracker.access(3);
    tracker.access(2); // distance 1 (only 3 since last access of 2)
    EXPECT_EQ(tracker.access(1), 2); // 2 and 3 touched since
}

TEST(ReuseDistance, RepeatsDoNotInflateDistance)
{
    ReuseDistanceTracker tracker;
    tracker.access(1);
    tracker.access(2);
    tracker.access(2);
    tracker.access(2);
    EXPECT_EQ(tracker.access(1), 1); // only one unique key between
}

TEST(ReuseDistance, ClassicSequence)
{
    // a b c b a: distances inf inf inf 1 2.
    const auto d = reuseDistances({10, 20, 30, 20, 10});
    EXPECT_EQ(d, (std::vector<std::int64_t>{reuseInfinite,
                                            reuseInfinite,
                                            reuseInfinite, 1, 2}));
}

TEST(ReuseDistance, UniqueKeyCount)
{
    ReuseDistanceTracker tracker;
    tracker.access(5);
    tracker.access(5);
    tracker.access(9);
    EXPECT_EQ(tracker.uniqueKeys(), 2u);
}

TEST(ReuseDistance, MatchesNaiveOnRandomStreams)
{
    mocktails::util::Rng rng(31);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<std::uint64_t> keys;
        for (int i = 0; i < 800; ++i)
            keys.push_back(rng.below(60));
        EXPECT_EQ(reuseDistances(keys), naiveReuse(keys))
            << "trial " << trial;
    }
}

TEST(ReuseDistance, MatchesNaiveOnStridedStream)
{
    std::vector<std::uint64_t> keys;
    for (int round = 0; round < 4; ++round) {
        for (std::uint64_t k = 0; k < 50; ++k)
            keys.push_back(k);
    }
    const auto fast = reuseDistances(keys);
    const auto slow = naiveReuse(keys);
    EXPECT_EQ(fast, slow);
    // Cyclic sweeps have constant distance = working set - 1.
    EXPECT_EQ(fast[50], 49);
    EXPECT_EQ(fast[150], 49);
}

TEST(ReuseDistance, LargeStreamGrowsTree)
{
    // Exceeds the initial Fenwick-tree capacity to exercise regrowth.
    ReuseDistanceTracker tracker;
    for (std::uint64_t i = 0; i < 5000; ++i)
        tracker.access(i % 100);
    EXPECT_EQ(tracker.uniqueKeys(), 100u);
    EXPECT_EQ(tracker.access(0), 99);
}

} // namespace
