#include "baselines/hrd.hpp"

#include <gtest/gtest.h>

#include "baselines/reuse.hpp"
#include "cache/hierarchy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::baselines;

mem::Trace
cpuLikeTrace(std::size_t n, std::uint64_t seed)
{
    // Hot working set + streaming mix, 8-byte accesses (CPU-L1 port).
    mem::Trace t("cpu", "CPU");
    util::Rng rng(seed);
    mem::Addr stream = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        mem::Addr addr;
        if (rng.chance(0.6)) {
            addr = 0x100000 + (rng.below(16384) & ~mem::Addr{7});
        } else {
            addr = stream;
            stream += 8;
        }
        t.add(i, addr, 8,
              rng.chance(0.7) ? mem::Op::Read : mem::Op::Write);
    }
    return t;
}

TEST(HrdBuild, HistogramTotals)
{
    const mem::Trace trace = cpuLikeTrace(5000, 1);
    const HrdProfile p = buildHrd(trace);
    EXPECT_EQ(p.requests, 5000u);

    std::uint64_t fine_total = 0;
    for (const auto &[d, c] : p.reuseFine)
        fine_total += c;
    EXPECT_EQ(fine_total, 5000u);

    // Coarse histogram only counts fine-cold accesses.
    std::uint64_t coarse_total = 0;
    for (const auto &[d, c] : p.reuseCoarse)
        coarse_total += c;
    EXPECT_EQ(coarse_total, p.reuseFine.at(reuseInfinite));
}

TEST(HrdBuild, OperationCountsSum)
{
    const mem::Trace trace = cpuLikeTrace(3000, 2);
    const HrdProfile p = buildHrd(trace);
    EXPECT_EQ(p.cleanReads + p.cleanWrites + p.dirtyReads +
                  p.dirtyWrites,
              3000u);
}

TEST(HrdBuild, SizeDistributionCaptured)
{
    const mem::Trace trace = cpuLikeTrace(1000, 3);
    const HrdProfile p = buildHrd(trace);
    ASSERT_EQ(p.sizeCounts.size(), 1u);
    EXPECT_EQ(p.sizeCounts.at(8), 1000u);
}

TEST(HrdSynthesis, RequestCountAndOrderOnlyTicks)
{
    const HrdProfile p = buildHrd(cpuLikeTrace(2000, 4));
    const mem::Trace synth = synthesizeHrd(p, 1);
    ASSERT_EQ(synth.size(), 2000u);
    EXPECT_TRUE(synth.isTimeOrdered());
}

TEST(HrdSynthesis, PreservesReadWriteTotals)
{
    const mem::Trace trace = cpuLikeTrace(4000, 5);
    std::uint64_t reads = 0;
    for (const auto &r : trace)
        reads += r.isRead();

    const mem::Trace synth = synthesizeHrd(buildHrd(trace), 2);
    std::uint64_t synth_reads = 0;
    for (const auto &r : synth)
        synth_reads += r.isRead();
    // The clean/dirty split is stochastic, but totals stay within the
    // strict budgets.
    EXPECT_EQ(synth.size(), trace.size());
    EXPECT_NEAR(static_cast<double>(synth_reads),
                static_cast<double>(reads),
                static_cast<double>(trace.size()) * 0.02);
}

TEST(HrdSynthesis, ReproducesFootprintApproximately)
{
    const mem::Trace trace = cpuLikeTrace(10000, 6);
    const HrdProfile p = buildHrd(trace);

    cache::Hierarchy baseline{cache::HierarchyConfig{}};
    baseline.run(trace);
    cache::Hierarchy synth_h{cache::HierarchyConfig{}};
    synth_h.run(synthesizeHrd(p, 3));

    const double err = util::percentError(
        static_cast<double>(synth_h.footprintBlocks()),
        static_cast<double>(baseline.footprintBlocks()));
    EXPECT_LT(err, 10.0);
}

TEST(HrdSynthesis, ReproducesFullyAssociativeMissRate)
{
    // Reuse-distance replay is exact for a fully associative LRU
    // cache: an access hits iff its stack distance is below the
    // capacity, and strict convergence reproduces the distance
    // histogram.
    const mem::Trace trace = cpuLikeTrace(20000, 7);
    const HrdProfile p = buildHrd(trace);

    cache::HierarchyConfig config;
    config.l1 = cache::CacheConfig{16 * 1024, 256, 64}; // one set
    cache::Hierarchy baseline{config};
    baseline.run(trace);
    cache::Hierarchy synth_h{config};
    synth_h.run(synthesizeHrd(p, 4));

    EXPECT_NEAR(synth_h.l1Stats().missRate(),
                baseline.l1Stats().missRate(), 0.03);
}

TEST(HrdSynthesis, SetAssociativeMissRateInLooseBand)
{
    // For set-associative caches a *global* reuse model loses the
    // original's address-to-set mapping (blocks are re-identified at
    // synthesis), so conflict misses deviate — the model limitation
    // that motivates Mocktails' spatial partitioning. We only require
    // a loose band here.
    const mem::Trace trace = cpuLikeTrace(20000, 7);
    const HrdProfile p = buildHrd(trace);

    cache::HierarchyConfig config;
    config.l1 = cache::CacheConfig{16 * 1024, 2, 64};
    cache::Hierarchy baseline{config};
    baseline.run(trace);
    cache::Hierarchy synth_h{config};
    synth_h.run(synthesizeHrd(p, 4));

    EXPECT_NEAR(synth_h.l1Stats().missRate(),
                baseline.l1Stats().missRate(), 0.3);
}

TEST(HrdSynthesis, Deterministic)
{
    const HrdProfile p = buildHrd(cpuLikeTrace(1000, 8));
    const mem::Trace a = synthesizeHrd(p, 9);
    const mem::Trace b = synthesizeHrd(p, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(HrdProfileMeta, MetadataIsSmall)
{
    const mem::Trace trace = cpuLikeTrace(50000, 10);
    const HrdProfile p = buildHrd(trace);
    // HRD stores two histograms: far smaller than the trace itself.
    EXPECT_LT(p.metadataBytes(), 50000u * 8);
    EXPECT_GT(p.metadataBytes(), 0u);
}

TEST(HrdSynthesis, EmptyProfile)
{
    HrdProfile p;
    const mem::Trace synth = synthesizeHrd(p, 1);
    EXPECT_TRUE(synth.empty());
}

} // namespace
