#include "workloads/spec.hpp"

#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "mem/trace_stats.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::workloads;

TEST(SpecRegistry, TwentyThreeBenchmarks)
{
    EXPECT_EQ(specBenchmarks().size(), 23u);
}

TEST(SpecRegistry, KnownNamesPresent)
{
    const auto &names = specBenchmarks();
    for (const char *expected :
         {"gobmk", "h264ref", "libquantum", "milc", "soplex", "zeusmp",
          "astar", "hmmer", "calculix", "mcf"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
}

TEST(SpecRegistry, UnknownNameThrows)
{
    EXPECT_THROW(specParams("fortran_dreams"), std::invalid_argument);
    EXPECT_THROW(makeSpecTrace("fortran_dreams", 10),
                 std::invalid_argument);
}

TEST(SpecRegistry, ProbabilitiesAreSane)
{
    for (const auto &name : specBenchmarks()) {
        const SpecParams &p = specParams(name);
        EXPECT_GE(p.pHot, 0.0) << name;
        EXPECT_LE(p.pHot + p.pStream + p.pChase, 1.0) << name;
        EXPECT_GT(p.readFraction, 0.0) << name;
        EXPECT_LT(p.readFraction, 1.0) << name;
        EXPECT_GE(p.streams, 1u) << name;
        EXPECT_GT(p.footprint, p.hotBytes) << name;
    }
}

class SpecTraceTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(SpecTraceTest, WellFormed)
{
    const mem::Trace trace = makeSpecTrace(GetParam(), 10000, 1);
    EXPECT_EQ(trace.size(), 10000u);
    EXPECT_EQ(trace.name(), GetParam());
    EXPECT_EQ(trace.device(), "CPU");
    EXPECT_TRUE(trace.isTimeOrdered());
    for (std::size_t i = 0; i < trace.size(); i += 53) {
        EXPECT_TRUE(trace[i].size == 4 || trace[i].size == 8);
    }
}

TEST_P(SpecTraceTest, ReadFractionNearConfigured)
{
    const mem::Trace trace = makeSpecTrace(GetParam(), 20000, 2);
    const auto stats = mem::computeStats(trace);
    EXPECT_NEAR(stats.readFraction(),
                specParams(GetParam()).readFraction, 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SpecTraceTest,
                         ::testing::ValuesIn(specBenchmarks()));

TEST(SpecBehaviour, LibquantumStreamsThroughCache)
{
    // Streaming-dominant: very high L1 miss rate on repeated data.
    cache::Hierarchy h{cache::HierarchyConfig{}};
    h.run(makeSpecTrace("libquantum", 50000, 1));
    EXPECT_GT(h.l1Stats().missRate(), 0.05);
}

TEST(SpecBehaviour, HmmerHitsInCache)
{
    // Tiny hot working set: low L1 miss rate.
    cache::Hierarchy h{cache::HierarchyConfig{}};
    h.run(makeSpecTrace("hmmer", 50000, 1));
    EXPECT_LT(h.l1Stats().missRate(), 0.05);
}

TEST(SpecBehaviour, BenchmarksAreDistinct)
{
    // Different benchmarks produce different miss rates (they are not
    // all the same generator in disguise).
    cache::Hierarchy a{cache::HierarchyConfig{}};
    a.run(makeSpecTrace("mcf", 30000, 1));
    cache::Hierarchy b{cache::HierarchyConfig{}};
    b.run(makeSpecTrace("povray", 30000, 1));
    EXPECT_GT(a.l1Stats().missRate(), b.l1Stats().missRate() * 2);
}

TEST(SpecBehaviour, Deterministic)
{
    const mem::Trace a = makeSpecTrace("gcc", 5000, 3);
    const mem::Trace b = makeSpecTrace("gcc", 5000, 3);
    for (std::size_t i = 0; i < a.size(); i += 17)
        EXPECT_EQ(a[i], b[i]);
}

} // namespace
