#include "workloads/devices.hpp"

#include <gtest/gtest.h>

#include "mem/trace_stats.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::workloads;

TEST(DeviceRegistry, MatchesTable2Inventory)
{
    const auto &specs = deviceTraces();
    EXPECT_EQ(specs.size(), 20u);

    int cpu = 0, dpu = 0, gpu = 0, vpu = 0, dma = 0, npu = 0;
    for (const auto &spec : specs) {
        if (spec.device == "CPU")
            ++cpu;
        else if (spec.device == "DPU")
            ++dpu;
        else if (spec.device == "GPU")
            ++gpu;
        else if (spec.device == "VPU")
            ++vpu;
        else if (spec.device == "DMA")
            ++dma;
        else if (spec.device == "NPU")
            ++npu;
    }
    EXPECT_EQ(cpu, 5);
    EXPECT_EQ(dpu, 5);
    EXPECT_EQ(gpu, 5);
    EXPECT_EQ(vpu, 3);
    EXPECT_EQ(dma, 1);
    EXPECT_EQ(npu, 1);
}

TEST(DeviceRegistry, UnknownNameThrows)
{
    EXPECT_THROW(makeDeviceTrace("NoSuchTrace", 100),
                 std::invalid_argument);
}

class DeviceTraceTest
    : public ::testing::TestWithParam<DeviceTraceSpec>
{};

TEST_P(DeviceTraceTest, ProducesWellFormedTrace)
{
    const auto &spec = GetParam();
    const mem::Trace trace = spec.make(20000, 1);
    EXPECT_EQ(trace.size(), 20000u);
    EXPECT_EQ(trace.name(), spec.name);
    EXPECT_EQ(trace.device(), spec.device);
    EXPECT_TRUE(trace.isTimeOrdered());
    for (std::size_t i = 0; i < trace.size(); i += 97) {
        EXPECT_GT(trace[i].size, 0u);
        EXPECT_LE(trace[i].size, 4096u);
    }
}

TEST_P(DeviceTraceTest, DeterministicForSeed)
{
    const auto &spec = GetParam();
    const mem::Trace a = spec.make(5000, 7);
    const mem::Trace b = spec.make(5000, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 13)
        EXPECT_EQ(a[i], b[i]);
}

TEST_P(DeviceTraceTest, MixesReadsAndWrites)
{
    const auto &spec = GetParam();
    const auto stats = mem::computeStats(spec.make(20000, 1));
    EXPECT_GT(stats.reads, 0u);
    EXPECT_GT(stats.writes, 0u);
    // Every device class is read-dominant (display/decode/render).
    EXPECT_GT(stats.readFraction(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, DeviceTraceTest, ::testing::ValuesIn(deviceTraces()),
    [](const ::testing::TestParamInfo<DeviceTraceSpec> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(DeviceCharacteristics, VpuHasLongIdleGaps)
{
    // Paper Fig. 3: request clusters separated by long idle periods.
    const mem::Trace trace = makeHevc(30000, 1, 1);
    mem::Tick max_gap = 0;
    for (std::size_t i = 1; i < trace.size(); ++i)
        max_gap = std::max(max_gap, trace[i].tick - trace[i - 1].tick);
    EXPECT_GT(max_gap, 10000000u);
}

TEST(DeviceCharacteristics, GpuIsBurstier)
{
    // GPU issues large requests back to back: the median inter-arrival
    // gap is tiny relative to the DPU's paced refresh traffic.
    const mem::Trace gpu = makeTRex(20000, 1, 1);
    const mem::Trace dpu = makeFbcLinear(20000, 1, 1);
    auto median_gap = [](const mem::Trace &t) {
        std::vector<mem::Tick> gaps;
        for (std::size_t i = 1; i < t.size(); ++i)
            gaps.push_back(t[i].tick - t[i - 1].tick);
        std::nth_element(gaps.begin(),
                         gaps.begin() +
                             static_cast<std::ptrdiff_t>(gaps.size() / 2),
                         gaps.end());
        return gaps[gaps.size() / 2];
    };
    EXPECT_LE(median_gap(gpu), median_gap(dpu));
}

TEST(DeviceCharacteristics, TiledAndLinearDiffer)
{
    // The tiled scan produces pitch-sized strides absent from the
    // linear scan (the Fig. 10 contrast).
    const mem::Trace linear = makeFbcLinear(10000, 1, 1);
    const mem::Trace tiled = makeFbcTiled(10000, 1, 1);
    auto count_stride = [](const mem::Trace &t, std::int64_t wanted) {
        std::size_t n = 0;
        for (std::size_t i = 1; i < t.size(); ++i) {
            const std::int64_t s =
                static_cast<std::int64_t>(t[i].addr) -
                static_cast<std::int64_t>(t[i - 1].addr);
            n += (s == wanted);
        }
        return n;
    };
    EXPECT_GT(count_stride(tiled, 4096), count_stride(linear, 4096) * 2);
}

TEST(DeviceCharacteristics, CryptoVariantsDiffer)
{
    const auto s1 = mem::computeStats(makeCrypto(10000, 1, 1));
    const auto s2 = mem::computeStats(makeCrypto(10000, 1, 2));
    EXPECT_NE(s1.bytesRead, s2.bytesRead);
}

} // namespace
