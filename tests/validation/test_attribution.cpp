#include "validation/attribution.hpp"

#include <gtest/gtest.h>

#include "core/model_generator.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::validation;

/**
 * A trace whose default spatial partitioning yields exactly two
 * leaves: a linear read stream in a low region and a linear write
 * stream in a high, disjoint region.
 */
mem::Trace
makeTwoLeafTrace(std::size_t per_leaf = 3000)
{
    mem::Trace trace("two-leaf", "DPU");
    for (std::size_t i = 0; i < per_leaf; ++i) {
        trace.add(static_cast<mem::Tick>(i * 10),
                  0x10000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Read);
        trace.add(static_cast<mem::Tick>(i * 10 + 5),
                  0x4000000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Write);
    }
    return trace;
}

core::PartitionConfig
flatSpatial()
{
    return core::PartitionConfig{
        {{core::PartitionLayer::Kind::SpatialDynamic, 0}}};
}

TEST(Attribution, TwoLeafHandBuiltProfile)
{
    const mem::Trace trace = makeTwoLeafTrace();
    const core::Profile profile =
        core::buildProfile(trace, flatSpatial());
    ASSERT_EQ(profile.leaves.size(), 2u);

    const AttributionReport report = attributeErrors(trace, profile);
    EXPECT_TRUE(report.hierarchyMatched) << report.note;
    EXPECT_EQ(report.baselineRequests, trace.size());
    EXPECT_EQ(report.syntheticRequests, trace.size());
    ASSERT_EQ(report.leaves.size(), 2u);

    // Request counts round-trip through the provenance split: each
    // leaf's baseline and synthetic sub-streams both hold its half.
    for (const LeafAttribution &leaf : report.leaves) {
        EXPECT_LT(leaf.leaf, 2u);
        EXPECT_EQ(leaf.baselineRequests, trace.size() / 2);
        EXPECT_EQ(leaf.syntheticRequests, trace.size() / 2);
        EXPECT_FALSE(leaf.metrics.empty());
        EXPECT_LE(leaf.meanErrorPercent, leaf.worstErrorPercent);
        // Flat config: paths are single ordinals.
        EXPECT_TRUE(leaf.path == "0" || leaf.path == "1");
    }
    // Ranking is worst-first.
    EXPECT_GE(report.leaves[0].worstErrorPercent,
              report.leaves[1].worstErrorPercent);
    // Two perfectly regular streams synthesise near-perfectly.
    EXPECT_LT(report.leaves[0].worstErrorPercent, 5.0)
        << attributionToMarkdown(report);
    // A single-layer hierarchy has no proper prefixes to aggregate.
    EXPECT_TRUE(report.layers.empty());
}

TEST(Attribution, BrokenLeafRanksFirst)
{
    const mem::Trace trace = makeTwoLeafTrace();
    core::Profile profile = core::buildProfile(trace, flatSpatial());
    ASSERT_EQ(profile.leaves.size(), 2u);

    // Sabotage leaf 1: halve its request count. The per-leaf
    // comparison must pin the damage on it, not on healthy leaf 0.
    profile.leaves[1].count /= 2;
    const AttributionReport report = attributeErrors(trace, profile);

    // The doctored profile no longer matches the re-partitioned
    // baseline exactly (leaf 1's count differs), which the report
    // must say rather than silently mispair.
    EXPECT_FALSE(report.hierarchyMatched);
    EXPECT_FALSE(report.note.empty());

    ASSERT_EQ(report.leaves.size(), 2u);
    EXPECT_EQ(report.leaves[0].leaf, 1u);
    EXPECT_GT(report.leaves[0].worstErrorPercent,
              report.leaves[1].worstErrorPercent);
    // stream.requests names the halved count: ~50% error.
    EXPECT_GT(report.leaves[0].worstErrorPercent, 25.0);
}

TEST(Attribution, LayerAggregationOnTwoLevelHierarchy)
{
    const mem::Trace trace = workloads::makeHevc(12000, 1, 2);
    const auto config =
        core::PartitionConfig::twoLevelTsByRequests(3000);
    const core::Profile profile = core::buildProfile(trace, config);

    AttributionOptions options;
    options.maxLeaves = 8;
    const AttributionReport report =
        attributeErrors(trace, profile, options);
    EXPECT_TRUE(report.hierarchyMatched) << report.note;
    EXPECT_LE(report.leaves.size(), 8u);
    ASSERT_FALSE(report.layers.empty());

    // 12000 requests in windows of 3000 -> four depth-1 phases, which
    // between them hold every leaf.
    std::uint64_t leaves_in_layers = 0;
    for (const LayerAttribution &layer : report.layers) {
        EXPECT_EQ(layer.depth, 1u);
        leaves_in_layers += layer.leaves;
        EXPECT_GE(layer.worstErrorPercent, layer.meanErrorPercent);
    }
    EXPECT_EQ(report.layers.size(), 4u);
    EXPECT_EQ(leaves_in_layers, profile.leaves.size());
}

TEST(Attribution, JsonAndMarkdownNameTheLeaves)
{
    const mem::Trace trace = makeTwoLeafTrace(1500);
    const core::Profile profile =
        core::buildProfile(trace, flatSpatial());
    const AttributionReport report = attributeErrors(trace, profile);

    const std::string json = attributionToJson(report);
    EXPECT_NE(json.find("\"hierarchy_matched\":true"),
              std::string::npos);
    EXPECT_NE(json.find("\"path\":\"0\""), std::string::npos);
    EXPECT_NE(json.find("\"path\":\"1\""), std::string::npos);
    EXPECT_NE(json.find("\"worst_error_percent\""), std::string::npos);
    EXPECT_NE(json.find("\"delta_time\""), std::string::npos);

    const std::string md = attributionToMarkdown(report);
    EXPECT_NE(md.find("# Fidelity attribution"), std::string::npos);
    EXPECT_NE(md.find("| rank |"), std::string::npos);
    EXPECT_NE(md.find("Hierarchy pairing: exact"), std::string::npos);
}

TEST(Attribution, SubstrateTogglesLimitMetrics)
{
    const mem::Trace trace = makeTwoLeafTrace(1000);
    const core::Profile profile =
        core::buildProfile(trace, flatSpatial());
    AttributionOptions options;
    options.dram = false;
    options.cache = false;
    const AttributionReport report =
        attributeErrors(trace, profile, options);
    for (const LeafAttribution &leaf : report.leaves) {
        // Only the stream-shape metric remains.
        ASSERT_EQ(leaf.metrics.size(), 1u);
        EXPECT_EQ(leaf.metrics[0].name, "stream.requests");
    }
}

} // namespace
