#include "validation/validate.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/model_generator.hpp"
#include "util/stats.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::validation;

TEST(Validate, GoodProfilePasses)
{
    const mem::Trace trace =
        workloads::makeFbcTiled(15000, 1, 1);
    const auto report = validateConfig(
        trace, core::PartitionConfig::twoLevelTs());
    EXPECT_TRUE(report.passed) << formatReport(report);
    EXPECT_FALSE(report.dramMetrics.empty());
    EXPECT_FALSE(report.cacheMetrics.empty());
    EXPECT_LE(report.meanErrorPercent, report.worstErrorPercent);
}

TEST(Validate, SelfComparisonIsPerfect)
{
    // Validating a trace against a profile whose synthesis reproduces
    // it exactly (pure linear stream) yields ~zero errors.
    mem::Trace trace("linear", "DPU");
    for (int i = 0; i < 5000; ++i) {
        trace.add(static_cast<mem::Tick>(i * 8),
                  0x10000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Read);
    }
    const auto report = validateConfig(
        trace,
        core::PartitionConfig{
            {{core::PartitionLayer::Kind::SpatialDynamic, 0}}});
    EXPECT_TRUE(report.passed);
    EXPECT_LT(report.worstErrorPercent, 1.0);
}

TEST(Validate, BadProfileFails)
{
    // A degenerate hierarchy (flat, one leaf) on an irregular
    // workload misses metrics that a tight threshold catches.
    const mem::Trace trace =
        workloads::makeSpecTrace("mcf", 20000, 1);
    ValidationOptions options;
    options.passThresholdPercent = 0.05;
    const auto report =
        validateConfig(trace, core::PartitionConfig{}, options);
    EXPECT_FALSE(report.passed);
    EXPECT_GT(report.worstErrorPercent, 0.05);
}

TEST(Validate, OptionsDisableSubstrates)
{
    const mem::Trace trace = workloads::makeCpuV(5000, 1);
    ValidationOptions options;
    options.cache = false;
    const auto dram_only = validateConfig(
        trace, core::PartitionConfig::twoLevelTs(), options);
    EXPECT_FALSE(dram_only.dramMetrics.empty());
    EXPECT_TRUE(dram_only.cacheMetrics.empty());

    options.cache = true;
    options.dram = false;
    const auto cache_only = validateConfig(
        trace, core::PartitionConfig::twoLevelTs(), options);
    EXPECT_TRUE(cache_only.dramMetrics.empty());
    EXPECT_FALSE(cache_only.cacheMetrics.empty());
}

TEST(Validate, ReportFormatsAllMetrics)
{
    const mem::Trace trace = workloads::makeCrypto(5000, 1, 1);
    const auto report = validateConfig(
        trace, core::PartitionConfig::twoLevelTs());
    const std::string text = formatReport(report);
    EXPECT_NE(text.find("dram.read_row_hits"), std::string::npos);
    EXPECT_NE(text.find("cache.l1_miss_rate"), std::string::npos);
    EXPECT_NE(text.find(report.passed ? "PASS" : "FAIL"),
              std::string::npos);
}

TEST(Validate, MetricComparisonEdgeCases)
{
    // The MetricComparison error semantics on degenerate baselines:
    // both-zero is a perfect match, zero baseline with nonzero
    // synthetic saturates, negative deltas report magnitude.
    MetricComparison both_zero{"m", 0.0, 0.0,
                               util::percentError(0.0, 0.0)};
    EXPECT_DOUBLE_EQ(both_zero.errorPercent, 0.0);

    MetricComparison zero_base{"m", 0.0, 17.0,
                               util::percentError(17.0, 0.0)};
    EXPECT_DOUBLE_EQ(zero_base.errorPercent, 100.0);

    MetricComparison negative{"m", -10.0, -9.0,
                              util::percentError(-9.0, -10.0)};
    EXPECT_DOUBLE_EQ(negative.errorPercent, 10.0);
}

TEST(Validate, ReportJsonRoundTripsVerdictAndMetrics)
{
    const mem::Trace trace = workloads::makeCrypto(5000, 1, 1);
    const auto report = validateConfig(
        trace, core::PartitionConfig::twoLevelTs());
    const std::string json = reportToJson(report);
    EXPECT_NE(json.find(report.passed ? "\"passed\":true"
                                      : "\"passed\":false"),
              std::string::npos);
    EXPECT_NE(json.find("\"worst_error_percent\""), std::string::npos);
    EXPECT_NE(json.find("\"dram_metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"cache_metrics\""), std::string::npos);
    for (const auto &metric : report.dramMetrics)
        EXPECT_NE(json.find("\"" + metric.name + "\""),
                  std::string::npos);
}

TEST(Validate, SaveReportJsonWritesFile)
{
    ValidationReport report;
    report.passed = false;
    report.worstErrorPercent = 42.0;
    report.dramMetrics.push_back({"dram.read_bursts", 10.0, 5.0, 50.0});

    const std::string path =
        testing::TempDir() + "validate_report.json";
    ASSERT_TRUE(saveReportJson(report, path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[512] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    const std::string text(buf, n);
    EXPECT_NE(text.find("\"passed\":false"), std::string::npos);
    EXPECT_NE(text.find("dram.read_bursts"), std::string::npos);
    std::remove(path.c_str());

    EXPECT_FALSE(saveReportJson(report, "/nonexistent/dir/x.json"));
}

TEST(Validate, ValidateProfileMatchesValidateConfig)
{
    const mem::Trace trace = workloads::makeHevc(8000, 1, 2);
    const auto config = core::PartitionConfig::twoLevelTs();
    const core::Profile profile = core::buildProfile(trace, config);

    const auto a = validateProfile(trace, profile);
    const auto b = validateConfig(trace, config);
    ASSERT_EQ(a.dramMetrics.size(), b.dramMetrics.size());
    for (std::size_t i = 0; i < a.dramMetrics.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.dramMetrics[i].synthetic,
                         b.dramMetrics[i].synthetic);
    }
}

} // namespace
