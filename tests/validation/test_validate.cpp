#include "validation/validate.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "core/model_generator.hpp"
#include "util/stats.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::validation;

TEST(Validate, GoodProfilePasses)
{
    const mem::Trace trace =
        workloads::makeFbcTiled(15000, 1, 1);
    const auto report = validateConfig(
        trace, core::PartitionConfig::twoLevelTs());
    EXPECT_TRUE(report.passed) << formatReport(report);
    EXPECT_FALSE(report.dramMetrics.empty());
    EXPECT_FALSE(report.cacheMetrics.empty());
    EXPECT_LE(report.meanErrorPercent, report.worstErrorPercent);
}

TEST(Validate, SelfComparisonIsPerfect)
{
    // Validating a trace against a profile whose synthesis reproduces
    // it exactly (pure linear stream) yields ~zero errors.
    mem::Trace trace("linear", "DPU");
    for (int i = 0; i < 5000; ++i) {
        trace.add(static_cast<mem::Tick>(i * 8),
                  0x10000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Read);
    }
    const auto report = validateConfig(
        trace,
        core::PartitionConfig{
            {{core::PartitionLayer::Kind::SpatialDynamic, 0}}});
    EXPECT_TRUE(report.passed);
    EXPECT_LT(report.worstErrorPercent, 1.0);
}

TEST(Validate, BadProfileFails)
{
    // A degenerate hierarchy (flat, one leaf) on an irregular
    // workload misses metrics that a tight threshold catches.
    const mem::Trace trace =
        workloads::makeSpecTrace("mcf", 20000, 1);
    ValidationOptions options;
    options.passThresholdPercent = 0.05;
    const auto report =
        validateConfig(trace, core::PartitionConfig{}, options);
    EXPECT_FALSE(report.passed);
    EXPECT_GT(report.worstErrorPercent, 0.05);
}

TEST(Validate, OptionsDisableSubstrates)
{
    const mem::Trace trace = workloads::makeCpuV(5000, 1);
    ValidationOptions options;
    options.cache = false;
    const auto dram_only = validateConfig(
        trace, core::PartitionConfig::twoLevelTs(), options);
    EXPECT_FALSE(dram_only.dramMetrics.empty());
    EXPECT_TRUE(dram_only.cacheMetrics.empty());

    options.cache = true;
    options.dram = false;
    const auto cache_only = validateConfig(
        trace, core::PartitionConfig::twoLevelTs(), options);
    EXPECT_TRUE(cache_only.dramMetrics.empty());
    EXPECT_FALSE(cache_only.cacheMetrics.empty());
}

TEST(Validate, ReportFormatsAllMetrics)
{
    const mem::Trace trace = workloads::makeCrypto(5000, 1, 1);
    const auto report = validateConfig(
        trace, core::PartitionConfig::twoLevelTs());
    const std::string text = formatReport(report);
    EXPECT_NE(text.find("dram.read_row_hits"), std::string::npos);
    EXPECT_NE(text.find("cache.l1_miss_rate"), std::string::npos);
    EXPECT_NE(text.find(report.passed ? "PASS" : "FAIL"),
              std::string::npos);
}

TEST(Validate, MetricComparisonEdgeCases)
{
    // The MetricComparison error semantics on degenerate baselines:
    // both-zero is a perfect match, zero baseline with nonzero
    // synthetic saturates, negative deltas report magnitude.
    MetricComparison both_zero{"m", 0.0, 0.0,
                               util::percentError(0.0, 0.0)};
    EXPECT_DOUBLE_EQ(both_zero.errorPercent, 0.0);

    MetricComparison zero_base{"m", 0.0, 17.0,
                               util::percentError(17.0, 0.0)};
    EXPECT_DOUBLE_EQ(zero_base.errorPercent, 100.0);

    MetricComparison negative{"m", -10.0, -9.0,
                              util::percentError(-9.0, -10.0)};
    EXPECT_DOUBLE_EQ(negative.errorPercent, 10.0);
}

TEST(Validate, ReportJsonRoundTripsVerdictAndMetrics)
{
    const mem::Trace trace = workloads::makeCrypto(5000, 1, 1);
    const auto report = validateConfig(
        trace, core::PartitionConfig::twoLevelTs());
    const std::string json = reportToJson(report);
    EXPECT_NE(json.find(report.passed ? "\"passed\":true"
                                      : "\"passed\":false"),
              std::string::npos);
    EXPECT_NE(json.find("\"worst_error_percent\""), std::string::npos);
    EXPECT_NE(json.find("\"dram_metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"cache_metrics\""), std::string::npos);
    for (const auto &metric : report.dramMetrics)
        EXPECT_NE(json.find("\"" + metric.name + "\""),
                  std::string::npos);
}

TEST(Validate, SaveReportJsonWritesFile)
{
    ValidationReport report;
    report.passed = false;
    report.worstErrorPercent = 42.0;
    report.dramMetrics.push_back({"dram.read_bursts", 10.0, 5.0, 50.0});

    const std::string path =
        testing::TempDir() + "validate_report.json";
    ASSERT_TRUE(saveReportJson(report, path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[512] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    const std::string text(buf, n);
    EXPECT_NE(text.find("\"passed\":false"), std::string::npos);
    EXPECT_NE(text.find("dram.read_bursts"), std::string::npos);
    std::remove(path.c_str());

    EXPECT_FALSE(saveReportJson(report, "/nonexistent/dir/x.json"));
}

void
expectReportsIdentical(const ValidationReport &a,
                       const ValidationReport &b)
{
    // Bit-identical, not approximately equal: the parallel substrate
    // must not change a single ULP of the report.
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.worstErrorPercent, b.worstErrorPercent);
    EXPECT_EQ(a.meanErrorPercent, b.meanErrorPercent);
    const auto expect_metrics = [](const auto &ma, const auto &mb) {
        ASSERT_EQ(ma.size(), mb.size());
        for (std::size_t i = 0; i < ma.size(); ++i) {
            SCOPED_TRACE(ma[i].name);
            EXPECT_EQ(ma[i].name, mb[i].name);
            EXPECT_EQ(ma[i].baseline, mb[i].baseline);
            EXPECT_EQ(ma[i].synthetic, mb[i].synthetic);
            EXPECT_EQ(ma[i].errorPercent, mb[i].errorPercent);
        }
    };
    expect_metrics(a.dramMetrics, b.dramMetrics);
    expect_metrics(a.cacheMetrics, b.cacheMetrics);
}

TEST(Validate, ThreadCountDoesNotChangeTheReport)
{
    const mem::Trace trace = workloads::makeHevc(8000, 1, 2);
    const core::Profile profile = core::buildProfile(
        trace, core::PartitionConfig::twoLevelTs());

    ValidationOptions options;
    options.threads = 1;
    const auto sequential = validateProfile(trace, profile, options);
    for (const unsigned threads : {2u, 4u, 8u}) {
        SCOPED_TRACE(threads);
        options.threads = threads;
        expectReportsIdentical(
            sequential, validateProfile(trace, profile, options));
    }
}

TEST(Validate, ConcurrentValidationsShareThePool)
{
    // Two validations racing on the shared pool (each itself fanning
    // out) must produce exactly the reports the sequential runs do.
    // The sanitize preset turns this into a data-race check too.
    const mem::Trace trace_a = workloads::makeHevc(6000, 1, 2);
    const mem::Trace trace_b = workloads::makeFbcTiled(6000, 1, 1);
    const auto config = core::PartitionConfig::twoLevelTs();
    const core::Profile profile_a = core::buildProfile(trace_a, config);
    const core::Profile profile_b = core::buildProfile(trace_b, config);

    ValidationOptions sequential;
    sequential.threads = 1;
    const auto ref_a = validateProfile(trace_a, profile_a, sequential);
    const auto ref_b = validateProfile(trace_b, profile_b, sequential);

    ValidationOptions pooled;
    pooled.threads = 2;
    ValidationReport got_a, got_b;
    std::thread worker([&] {
        got_a = validateProfile(trace_a, profile_a, pooled);
    });
    got_b = validateProfile(trace_b, profile_b, pooled);
    worker.join();

    expectReportsIdentical(ref_a, got_a);
    expectReportsIdentical(ref_b, got_b);
}

TEST(Validate, ValidateProfileMatchesValidateConfig)
{
    const mem::Trace trace = workloads::makeHevc(8000, 1, 2);
    const auto config = core::PartitionConfig::twoLevelTs();
    const core::Profile profile = core::buildProfile(trace, config);

    const auto a = validateProfile(trace, profile);
    const auto b = validateConfig(trace, config);
    ASSERT_EQ(a.dramMetrics.size(), b.dramMetrics.size());
    for (std::size_t i = 0; i < a.dramMetrics.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.dramMetrics[i].synthetic,
                         b.dramMetrics[i].synthetic);
    }
}

} // namespace
