#include "validation/validate.hpp"

#include <gtest/gtest.h>

#include "core/model_generator.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::validation;

TEST(Validate, GoodProfilePasses)
{
    const mem::Trace trace =
        workloads::makeFbcTiled(15000, 1, 1);
    const auto report = validateConfig(
        trace, core::PartitionConfig::twoLevelTs());
    EXPECT_TRUE(report.passed) << formatReport(report);
    EXPECT_FALSE(report.dramMetrics.empty());
    EXPECT_FALSE(report.cacheMetrics.empty());
    EXPECT_LE(report.meanErrorPercent, report.worstErrorPercent);
}

TEST(Validate, SelfComparisonIsPerfect)
{
    // Validating a trace against a profile whose synthesis reproduces
    // it exactly (pure linear stream) yields ~zero errors.
    mem::Trace trace("linear", "DPU");
    for (int i = 0; i < 5000; ++i) {
        trace.add(static_cast<mem::Tick>(i * 8),
                  0x10000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Read);
    }
    const auto report = validateConfig(
        trace,
        core::PartitionConfig{
            {{core::PartitionLayer::Kind::SpatialDynamic, 0}}});
    EXPECT_TRUE(report.passed);
    EXPECT_LT(report.worstErrorPercent, 1.0);
}

TEST(Validate, BadProfileFails)
{
    // A degenerate hierarchy (flat, one leaf) on an irregular
    // workload misses metrics that a tight threshold catches.
    const mem::Trace trace =
        workloads::makeSpecTrace("mcf", 20000, 1);
    ValidationOptions options;
    options.passThresholdPercent = 0.05;
    const auto report =
        validateConfig(trace, core::PartitionConfig{}, options);
    EXPECT_FALSE(report.passed);
    EXPECT_GT(report.worstErrorPercent, 0.05);
}

TEST(Validate, OptionsDisableSubstrates)
{
    const mem::Trace trace = workloads::makeCpuV(5000, 1);
    ValidationOptions options;
    options.cache = false;
    const auto dram_only = validateConfig(
        trace, core::PartitionConfig::twoLevelTs(), options);
    EXPECT_FALSE(dram_only.dramMetrics.empty());
    EXPECT_TRUE(dram_only.cacheMetrics.empty());

    options.cache = true;
    options.dram = false;
    const auto cache_only = validateConfig(
        trace, core::PartitionConfig::twoLevelTs(), options);
    EXPECT_TRUE(cache_only.dramMetrics.empty());
    EXPECT_FALSE(cache_only.cacheMetrics.empty());
}

TEST(Validate, ReportFormatsAllMetrics)
{
    const mem::Trace trace = workloads::makeCrypto(5000, 1, 1);
    const auto report = validateConfig(
        trace, core::PartitionConfig::twoLevelTs());
    const std::string text = formatReport(report);
    EXPECT_NE(text.find("dram.read_row_hits"), std::string::npos);
    EXPECT_NE(text.find("cache.l1_miss_rate"), std::string::npos);
    EXPECT_NE(text.find(report.passed ? "PASS" : "FAIL"),
              std::string::npos);
}

TEST(Validate, ValidateProfileMatchesValidateConfig)
{
    const mem::Trace trace = workloads::makeHevc(8000, 1, 2);
    const auto config = core::PartitionConfig::twoLevelTs();
    const core::Profile profile = core::buildProfile(trace, config);

    const auto a = validateProfile(trace, profile);
    const auto b = validateConfig(trace, config);
    ASSERT_EQ(a.dramMetrics.size(), b.dramMetrics.size());
    for (std::size_t i = 0; i < a.dramMetrics.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.dramMetrics[i].synthetic,
                         b.dramMetrics[i].synthetic);
    }
}

} // namespace
