/**
 * @file
 * ScenarioEngine tests: the determinism contract (bit-identical merged
 * stream and report at every thread count), the per-device clock /
 * offset / budget projection, the (tick, port) merge order, and the
 * headline interference result — a contended mix must report higher
 * read latency than the same devices running alone.
 */

#include "scenario/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mem/trace.hpp"
#include "scenario/spec.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;
using scenario::ScenarioEngine;
using scenario::ScenarioOptions;
using scenario::ScenarioReport;
using scenario::ScenarioSpec;

ScenarioSpec
twoDeviceSpec()
{
    ScenarioSpec spec;
    std::string error;
    const std::string text = "name = \"duo\"\n"
                             "seed = 5\n"
                             "[device gpu]\n"
                             "generator = \"T-Rex1\"\n"
                             "requests = 3000\n"
                             "[device video]\n"
                             "generator = \"HEVC1\"\n"
                             "requests = 3000\n"
                             "start = 500\n";
    EXPECT_TRUE(
        scenario::parseScenario(text, "duo.scn", spec, &error))
        << error;
    return spec;
}

void
expectTracesEqual(const mem::Trace &a, const mem::Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "at index " << i;
}

/**
 * Reference two-way merge with the engine's key: (tick, device) —
 * the lower-indexed (= lower-port) device wins ties.
 */
std::vector<mem::Request>
referenceMerge(const mem::Trace &s0, const mem::Trace &s1)
{
    std::vector<mem::Request> out;
    out.reserve(s0.size() + s1.size());
    std::size_t c0 = 0, c1 = 0;
    while (c0 < s0.size() || c1 < s1.size()) {
        const bool take0 =
            c1 == s1.size() ||
            (c0 < s0.size() && s0[c0].tick <= s1[c1].tick);
        out.push_back(take0 ? s0[c0++] : s1[c1++]);
    }
    return out;
}

/**
 * The acceptance-criterion determinism sweep: the merged stream and
 * the full report JSON are bit-identical at thread counts 1 and 4.
 */
TEST(ScenarioEngine, ThreadCountNeverChangesStreamOrReport)
{
    ScenarioOptions one;
    one.threads = 1;
    ScenarioOptions four;
    four.threads = 4;
    ScenarioEngine engine_one(twoDeviceSpec(), one);
    ScenarioEngine engine_four(twoDeviceSpec(), four);

    expectTracesEqual(engine_one.mergedStream(),
                      engine_four.mergedStream());

    ScenarioReport report_one, report_four;
    std::string error;
    ASSERT_TRUE(engine_one.run(report_one, &error)) << error;
    ASSERT_TRUE(engine_four.run(report_four, &error)) << error;
    EXPECT_EQ(report_one.toJson(), report_four.toJson());
}

TEST(ScenarioEngine, MergedStreamInterleavesEveryDevice)
{
    ScenarioEngine engine(twoDeviceSpec());
    std::string error;
    ASSERT_TRUE(engine.buildStreams(&error)) << error;

    const std::vector<mem::Trace> &streams = engine.deviceStreams();
    ASSERT_EQ(streams.size(), 2u);
    EXPECT_EQ(streams[0].name(), "gpu");
    EXPECT_EQ(streams[0].device(), "GPU");
    EXPECT_EQ(streams[1].name(), "video");
    EXPECT_EQ(streams[1].device(), "VPU");

    const mem::Trace &merged = engine.mergedStream();
    EXPECT_EQ(merged.size(), streams[0].size() + streams[1].size());
    EXPECT_TRUE(merged.isTimeOrdered());
    EXPECT_EQ(merged.name(), "duo");
    EXPECT_EQ(merged.device(), "scenario");

    // The merge must equal the reference two-way merge exactly: every
    // request attributed, relative order within a device preserved.
    const std::vector<mem::Request> expected =
        referenceMerge(streams[0], streams[1]);
    ASSERT_EQ(merged.size(), expected.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
        ASSERT_EQ(merged[i], expected[i]) << "at index " << i;
}

TEST(ScenarioEngine, ProjectsClockOffsetAndBudget)
{
    ScenarioSpec spec;
    std::string error;
    const std::string text = "[device npu]\n"
                             "generator = \"NPU-GEMM\"\n"
                             "requests = 2000\n"
                             "seed = 11\n"
                             "clock = 2\n" // ticks halve
                             "start = 100\n"
                             "budget = 1500\n";
    ASSERT_TRUE(scenario::parseScenario(text, "n.scn", spec, &error))
        << error;
    ScenarioEngine engine(spec);
    std::string build_error;
    ASSERT_TRUE(engine.buildStreams(&build_error)) << build_error;
    const mem::Trace &stream = engine.deviceStreams()[0];

    const mem::Trace raw =
        workloads::makeDeviceTrace("NPU-GEMM", 2000, 11);
    ASSERT_EQ(stream.size(), 1500u); // budget cap
    for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(stream[i].tick, 100 + raw[i].tick / 2)
            << "at index " << i;
        EXPECT_EQ(stream[i].addr, raw[i].addr);
    }
    EXPECT_GE(stream[0].tick, 100u);
}

TEST(ScenarioEngine, EqualTicksBreakTiesByPort)
{
    // Two identical device streams (same generator, same seed): every
    // tick collides, so the merge order is decided purely by the port
    // tie-break — port 0's request always precedes port 1's.
    ScenarioSpec spec;
    std::string error;
    const std::string text = "[device a]\n"
                             "generator = \"HEVC1\"\n"
                             "requests = 500\nseed = 3\n"
                             "[device b]\n"
                             "generator = \"HEVC1\"\n"
                             "requests = 500\nseed = 3\n";
    ASSERT_TRUE(scenario::parseScenario(text, "t.scn", spec, &error))
        << error;
    ScenarioEngine engine(spec);
    const mem::Trace &merged = engine.mergedStream();
    const std::vector<mem::Trace> &streams = engine.deviceStreams();
    ASSERT_EQ(merged.size(), 1000u);
    expectTracesEqual(streams[0], streams[1]); // identical inputs

    // Within every group of equal ticks, all of port 0's requests
    // precede all of port 1's: walk the merge and check the reference
    // order (which encodes exactly that tie-break).
    const std::vector<mem::Request> expected =
        referenceMerge(streams[0], streams[1]);
    for (std::size_t i = 0; i < merged.size(); ++i)
        ASSERT_EQ(merged[i], expected[i]) << "at index " << i;
}

TEST(ScenarioEngine, ReportsBuildFailuresWithDeviceName)
{
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(scenario::parseScenario("[device ghost]\n"
                                        "generator = \"NoSuchGen\"\n",
                                        "g.scn", spec, &error))
        << error;
    ScenarioEngine engine(spec);
    ScenarioReport report;
    EXPECT_FALSE(engine.run(report, &error));
    EXPECT_NE(error.find("ghost"), std::string::npos) << error;
    EXPECT_NE(error.find("NoSuchGen"), std::string::npos) << error;

    // The failure is cached, not recomputed.
    std::string again;
    EXPECT_FALSE(engine.buildStreams(&again));
    EXPECT_EQ(again, error);
}

/**
 * The interference headline (ISSUE acceptance): a two-device mix
 * through one shared arbitrated link must report higher read latency
 * than either device saw running alone, and the report must rank by
 * that slowdown.
 */
TEST(ScenarioEngine, ContentionRaisesReadLatencyAboveIsolation)
{
    ScenarioSpec spec;
    std::string error;
    const std::string text = "name = \"clash\"\n"
                             "[dram]\nchannels = 1\n"
                             "[link]\nshared = true\nlatency = 6\n"
                             "queue = 4\n"
                             "[device dma0]\n"
                             "generator = \"DMA-Copy\"\n"
                             "requests = 4000\n"
                             "[device dma1]\n"
                             "generator = \"DMA-Copy\"\n"
                             "requests = 4000\nseed = 42\n";
    ASSERT_TRUE(scenario::parseScenario(text, "c.scn", spec, &error))
        << error;
    ScenarioEngine engine(spec);
    ScenarioReport report;
    ASSERT_TRUE(engine.run(report, &error)) << error;

    ASSERT_EQ(report.devices.size(), 2u);
    for (const scenario::DeviceReport &device : report.devices) {
        EXPECT_GT(device.requests, 0u);
        EXPECT_GT(device.isolatedReadLatency, 0.0) << device.name;
        EXPECT_GT(device.contendedReadLatency,
                  device.isolatedReadLatency)
            << device.name;
        EXPECT_GT(device.slowdown, 1.0) << device.name;
        EXPECT_GT(device.readLatencyP99, 0.0) << device.name;
        EXPECT_GE(device.readLatencyP99, device.readLatencyP50)
            << device.name;
        EXPECT_GT(report.avgReadLatency, device.isolatedReadLatency)
            << device.name;
    }
    // Ranked worst-first.
    EXPECT_GE(report.devices[0].slowdown, report.devices[1].slowdown);
    EXPECT_EQ(report.totalRequests,
              report.devices[0].requests + report.devices[1].requests);
}

TEST(ScenarioEngine, SkipIsolatedLeavesSlowdownUndefined)
{
    ScenarioOptions options;
    options.skipIsolated = true;
    ScenarioEngine engine(twoDeviceSpec(), options);
    ScenarioReport report;
    std::string error;
    ASSERT_TRUE(engine.run(report, &error)) << error;
    for (const scenario::DeviceReport &device : report.devices) {
        EXPECT_EQ(device.isolatedReadLatency, 0.0);
        EXPECT_EQ(device.slowdown, 0.0);
        EXPECT_GT(device.contendedReadLatency, 0.0);
    }
    // Ties on slowdown keep port order (stable sort).
    EXPECT_EQ(report.devices[0].port, 0u);
    EXPECT_EQ(report.devices[1].port, 1u);
}

TEST(ScenarioEngine, ReportRendersJsonAndMarkdown)
{
    ScenarioEngine engine(twoDeviceSpec());
    ScenarioReport report;
    std::string error;
    ASSERT_TRUE(engine.run(report, &error)) << error;

    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"name\":\"duo\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"devices\""), std::string::npos);
    EXPECT_NE(json.find("\"slowdown\""), std::string::npos);
    EXPECT_NE(json.find("\"avg_read_latency\""), std::string::npos);

    const std::string md = report.toMarkdown();
    EXPECT_NE(md.find("duo"), std::string::npos);
    EXPECT_NE(md.find("| device |"), std::string::npos) << md;
}

} // namespace
