/**
 * @file
 * Scenarios as first-class profile ids: registerScenario installs
 * ProfileStore loaders for the merged stream and each device stream;
 * SynthesisSession streams them chunk-size-invariantly; and a real
 * StreamServer serves them to both the blocking client and the
 * multiplexed fetch — byte-identical to the in-process engine (the
 * ISSUE acceptance criterion).
 */

#include "scenario/serve.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mem/trace.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "serve/client.hpp"
#include "serve/profile_store.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace
{

using namespace mocktails;

const char kSpecText[] = "name = \"served\"\n"
                         "seed = 2\n"
                         "[device gpu]\n"
                         "generator = \"Manhattan\"\n"
                         "requests = 2000\n"
                         "[device video]\n"
                         "generator = \"HEVC2\"\n"
                         "requests = 1500\n"
                         "start = 300\n"
                         "[device dma]\n"
                         "generator = \"DMA-Copy\"\n"
                         "requests = 1000\n";

scenario::ScenarioSpec
parsedSpec()
{
    scenario::ScenarioSpec spec;
    std::string error;
    EXPECT_TRUE(scenario::parseScenario(kSpecText, "served.scn", spec,
                                        &error))
        << error;
    return spec;
}

/** Drain a session in chunks of @p chunk requests. */
std::vector<mem::Request>
drain(serve::SynthesisSession &session, std::size_t chunk)
{
    std::vector<mem::Request> out;
    while (!session.done()) {
        if (session.next(out, chunk) == 0)
            break;
    }
    return out;
}

void
expectMatches(const std::vector<mem::Request> &streamed,
              const mem::Trace &expected, const std::string &what)
{
    ASSERT_EQ(streamed.size(), expected.size()) << what;
    for (std::size_t i = 0; i < streamed.size(); ++i)
        ASSERT_EQ(streamed[i], expected[i])
            << what << ", index " << i;
}

TEST(ScenarioServe, RegistersMergedAndPerDeviceIds)
{
    serve::ProfileStore store;
    std::string id;
    scenario::registerScenario(store, parsedSpec(), &id);
    EXPECT_EQ(id, "scenario:served");

    scenario::ScenarioEngine engine(parsedSpec());
    const mem::Trace &merged = engine.mergedStream();

    std::string error;
    const auto stored = store.get("scenario:served", &error);
    ASSERT_NE(stored, nullptr) << error;
    ASSERT_NE(stored->trace, nullptr);
    EXPECT_EQ(stored->streamParts, 3u);
    EXPECT_EQ(stored->totalRequests, merged.size());
    expectMatches(stored->trace->requests(), merged, "merged");

    for (std::size_t k = 0; k < 3; ++k) {
        const auto part =
            store.get(scenario::scenarioDeviceId("served", k), &error);
        ASSERT_NE(part, nullptr) << error;
        ASSERT_NE(part->trace, nullptr);
        EXPECT_EQ(part->streamParts, 0u);
        expectMatches(part->trace->requests(),
                      engine.deviceStreams()[k],
                      "device " + std::to_string(k));
    }

    // Unknown device index stays a miss, not a crash.
    EXPECT_EQ(store.get("scenario:served#9", &error), nullptr);
}

TEST(ScenarioServe, BadSpecFailsAtRegistrationNotFetch)
{
    serve::ProfileStore store;
    std::string id, error;
    EXPECT_FALSE(scenario::registerScenario(
        store, "/no/such/file.scn", &id, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

/**
 * Chunk-size invariance (ISSUE determinism satellite): sessions over
 * the scenario id emit the identical stream at chunk 1 and 4096, and
 * ignore the client seed (the stream is materialised, not
 * re-synthesised).
 */
TEST(ScenarioServe, SessionsAreChunkAndSeedInvariant)
{
    serve::ProfileStore store;
    scenario::registerScenario(store, parsedSpec());
    scenario::ScenarioEngine engine(parsedSpec());
    const mem::Trace &merged = engine.mergedStream();

    std::string error;
    const auto stored = store.get("scenario:served", &error);
    ASSERT_NE(stored, nullptr) << error;

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{4096}}) {
        for (const std::uint64_t seed : {1ull, 999ull}) {
            serve::SessionOptions options;
            options.seed = seed;
            serve::SynthesisSession session(stored, options);
            EXPECT_EQ(session.total(), merged.size());
            expectMatches(drain(session, chunk), merged,
                          "chunk " + std::to_string(chunk) + " seed " +
                              std::to_string(seed));
        }
    }
}

/**
 * The end-to-end acceptance criterion: `fetch --mux scenario:<name>`
 * (per-device channels, client-side merge) and the plain blocking
 * fetch both reproduce the engine's merged stream byte-identically.
 */
TEST(ScenarioServe, FetchedStreamsMatchInProcessEngine)
{
    serve::ProfileStore store;
    scenario::registerScenario(store, parsedSpec());
    serve::ServerOptions server_options;
    server_options.port = 0;
    serve::StreamServer server(store, server_options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    scenario::ScenarioEngine engine(parsedSpec());
    const mem::Trace &merged = engine.mergedStream();

    mem::Trace plain;
    ASSERT_TRUE(serve::fetchTrace("127.0.0.1", server.port(),
                                  "scenario:served", 1, plain, 0,
                                  &error))
        << error;
    expectMatches(plain.requests(), merged, "blocking fetch");
    EXPECT_EQ(plain.device(), "scenario");

    // Multiplexed: one channel per device, merged client-side. Odd
    // chunk sizes stress re-chunking across channel boundaries.
    for (const std::uint64_t chunk : {0ull, 97ull}) {
        mem::Trace muxed;
        ASSERT_TRUE(serve::fetchTraceMux("127.0.0.1", server.port(),
                                         "scenario:served", 1, muxed,
                                         chunk, &error))
            << error;
        expectMatches(muxed.requests(), merged,
                      "mux chunk " + std::to_string(chunk));
    }

    // A single device id is an ordinary stream on either path.
    mem::Trace device1;
    ASSERT_TRUE(serve::fetchTraceMux("127.0.0.1", server.port(),
                                     "scenario:served#1", 1, device1,
                                     0, &error))
        << error;
    expectMatches(device1.requests(), engine.deviceStreams()[1],
                  "device 1");
    server.stop();
}

} // namespace
