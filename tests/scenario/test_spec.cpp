/**
 * @file
 * Tests for the `.scn` scenario-spec parser: the grammar, the
 * defaulting rules (ports, seeds, names) and the "path:line: message"
 * diagnostic contract it shares with mem::loadTraceCsv.
 */

#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <string>

namespace
{

using namespace mocktails;
using scenario::ScenarioSpec;

const char kFullSpec[] = R"(# a full example
name = "mix"
seed = 9

[dram]
channels = 4
banks = 16

[crossbar]
latency = 8
queue = 32

[link]
shared = true
latency = 4
queue = 8
cycle = 2

[device gpu]
generator = "T-Rex1"   # trailing comment
requests = 5000
port = 3
clock = 2
priority = 1

[device cpu]
profile = "cpu.mkp"
seed = 77
clock = 0.5
start = 1000
budget = 1234
)";

TEST(ScenarioSpec, ParsesEverySection)
{
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(scenario::parseScenario(kFullSpec, "mix.scn", spec,
                                        &error))
        << error;

    EXPECT_EQ(spec.name, "mix");
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_EQ(spec.dram.channels, 4u);
    EXPECT_EQ(spec.dram.banksPerRank, 16u);
    EXPECT_EQ(spec.crossbar.latency, 8u);
    EXPECT_EQ(spec.crossbar.queueCapacity, 32u);
    EXPECT_TRUE(spec.sharedLink);
    EXPECT_EQ(spec.arbiter.linkLatency, 4u);
    EXPECT_EQ(spec.arbiter.queueCapacity, 8u);
    EXPECT_EQ(spec.arbiter.cycleTime, 2u);

    // Devices come back sorted by port: cpu (auto port 4 follows the
    // gpu's explicit 3)... no: auto-assignment continues from the
    // highest port seen, so cpu lands on port 4 and sorts second.
    ASSERT_EQ(spec.devices.size(), 2u);
    EXPECT_EQ(spec.devices[0].name, "gpu");
    EXPECT_EQ(spec.devices[0].generator, "T-Rex1");
    EXPECT_EQ(spec.devices[0].requests, 5000u);
    EXPECT_EQ(spec.devices[0].port, 3u);
    EXPECT_EQ(spec.devices[0].clockNum, 2u);
    EXPECT_EQ(spec.devices[0].clockDen, 1u);
    EXPECT_EQ(spec.devices[0].priority, 1u);
    EXPECT_EQ(spec.devices[0].kind(), "generator:T-Rex1");

    EXPECT_EQ(spec.devices[1].name, "cpu");
    EXPECT_EQ(spec.devices[1].profilePath, "cpu.mkp");
    EXPECT_EQ(spec.devices[1].port, 4u);
    EXPECT_EQ(spec.devices[1].seed, 77u);
    EXPECT_EQ(spec.devices[1].clockNum, 1u);
    EXPECT_EQ(spec.devices[1].clockDen, 2u);
    EXPECT_EQ(spec.devices[1].startOffset, 1000u);
    EXPECT_EQ(spec.devices[1].budget, 1234u);
    EXPECT_EQ(spec.devices[1].kind(), "profile:cpu.mkp");
}

TEST(ScenarioSpec, DefaultsNamePortsAndSeeds)
{
    const std::string text = "[device a]\n"
                             "generator = \"HEVC1\"\n"
                             "[device b]\n"
                             "generator = \"HEVC2\"\n";
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(scenario::parseScenario(text, "dir/two.scn", spec,
                                        &error))
        << error;
    EXPECT_EQ(spec.name, "two"); // file stem
    EXPECT_EQ(spec.seed, 1u);
    EXPECT_FALSE(spec.sharedLink);
    ASSERT_EQ(spec.devices.size(), 2u);
    EXPECT_EQ(spec.devices[0].port, 0u); // declaration order
    EXPECT_EQ(spec.devices[1].port, 1u);

    // seed = 0 derives a distinct per-device seed from scenario + port.
    EXPECT_EQ(spec.devices[0].effectiveSeed(spec.seed), 2u);
    EXPECT_EQ(spec.devices[1].effectiveSeed(spec.seed), 3u);
    EXPECT_NE(spec.devices[0].effectiveSeed(spec.seed),
              spec.devices[1].effectiveSeed(spec.seed));
}

TEST(ScenarioSpec, ServingIdHelpers)
{
    EXPECT_EQ(scenario::scenarioId("phone-soc"), "scenario:phone-soc");
    EXPECT_EQ(scenario::scenarioDeviceId("phone-soc", 2),
              "scenario:phone-soc#2");
    EXPECT_EQ(scenario::scenarioNameFromPath("a/b/phone-soc.scn"),
              "phone-soc");
    EXPECT_EQ(scenario::scenarioNameFromPath("plain"), "plain");
}

/** Every rejection names the file and line, loadTraceCsv-style. */
void
expectParseError(const std::string &text, const std::string &line_tag,
                 const std::string &message_tag)
{
    ScenarioSpec spec;
    std::string error;
    EXPECT_FALSE(
        scenario::parseScenario(text, "bad.scn", spec, &error));
    EXPECT_NE(error.find("bad.scn:" + line_tag), std::string::npos)
        << error;
    EXPECT_NE(error.find(message_tag), std::string::npos) << error;
}

TEST(ScenarioSpec, DiagnosesMalformedInput)
{
    expectParseError("garbage line\n", "1",
                     "expected 'key = value' or '[section]'");
    expectParseError("[nope]\n", "1", "unknown section");
    expectParseError("[dram\n", "1", "unterminated section header");
    expectParseError("wrong = 1\n", "1", "unknown top-level key");
    expectParseError("seed = many\n", "1", "non-negative integer");
    expectParseError("[dram]\nchannels = many\n", "2",
                     "'channels' out of range");
    expectParseError("seed = 1\n[device d]\nclock = 0\n", "3",
                     "'clock' expects a positive decimal ratio");
    expectParseError("[device d]\nrequests = 5\n[device e]\n"
                     "generator = \"HEVC1\"\n",
                     "3", "exactly one of generator= or profile=");
    expectParseError("[device d]\ngenerator = \"X\"\n"
                     "profile = \"y.mkp\"\n",
                     "4", "exactly one of generator= or profile=");
    expectParseError("[device d]\ngenerator = \"X\"\n[device d]\n"
                     "generator = \"Y\"\n",
                     "3", "duplicate device 'd'");
}

TEST(ScenarioSpec, RejectsPortClashesAndEmptyScenarios)
{
    ScenarioSpec spec;
    std::string error;
    EXPECT_FALSE(scenario::parseScenario("seed = 1\n", "bad.scn", spec,
                                         &error));
    EXPECT_NE(error.find("no [device] sections"), std::string::npos)
        << error;

    const std::string clash = "[device a]\ngenerator = \"HEVC1\"\n"
                              "port = 2\n"
                              "[device b]\ngenerator = \"HEVC2\"\n"
                              "port = 2\n";
    EXPECT_FALSE(
        scenario::parseScenario(clash, "bad.scn", spec, &error));
    EXPECT_NE(error.find("duplicate crossbar port 2"),
              std::string::npos)
        << error;
}

TEST(ScenarioSpec, ClockRatiosStayExact)
{
    const std::string text = "[device d]\ngenerator = \"HEVC1\"\n"
                             "clock = 2.25\n";
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(
        scenario::parseScenario(text, "c.scn", spec, &error))
        << error;
    EXPECT_EQ(spec.devices[0].clockNum, 9u); // 2.25 == 9/4, reduced
    EXPECT_EQ(spec.devices[0].clockDen, 4u);
}

} // namespace
