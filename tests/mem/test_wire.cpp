#include "mem/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace
{

using namespace mocktails;

std::vector<mem::Request>
randomRequests(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<mem::Request> out;
    out.reserve(n);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(100);
        mem::Request r;
        r.tick = tick;
        r.addr = 0x8000'0000ull + rng.below(1u << 26);
        r.size = rng.chance(0.5) ? 64 : 128;
        r.op = rng.chance(0.3) ? mem::Op::Write : mem::Op::Read;
        out.push_back(r);
    }
    return out;
}

TEST(RequestWire, RoundTripsOneShot)
{
    const auto requests = randomRequests(500, 11);
    util::ByteWriter w;
    mem::RequestCodecState enc;
    mem::encodeRequests(w, requests.data(), requests.size(), enc);

    util::ByteReader r(w.bytes());
    mem::RequestCodecState dec;
    std::vector<mem::Request> decoded;
    ASSERT_TRUE(
        mem::decodeRequests(r, requests.size(), decoded, dec));
    ASSERT_EQ(decoded.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
        EXPECT_EQ(decoded[i], requests[i]) << "record " << i;
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(dec.prevTick, enc.prevTick);
    EXPECT_EQ(dec.prevAddr, enc.prevAddr);
}

TEST(RequestWire, CarryStateCrossesChunkBoundaries)
{
    // Encoding in many small chunks with one shared state must produce
    // byte-identical output to one-shot encoding, and decode back with
    // an independently carried state.
    const auto requests = randomRequests(237, 7);

    util::ByteWriter one_shot;
    mem::RequestCodecState s1;
    mem::encodeRequests(one_shot, requests.data(), requests.size(), s1);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}}) {
        util::ByteWriter chunked;
        mem::RequestCodecState enc;
        for (std::size_t at = 0; at < requests.size(); at += chunk) {
            const std::size_t n =
                std::min(chunk, requests.size() - at);
            mem::encodeRequests(chunked, requests.data() + at, n, enc);
        }
        EXPECT_EQ(chunked.bytes(), one_shot.bytes())
            << "chunk " << chunk;

        util::ByteReader r(chunked.bytes());
        mem::RequestCodecState dec;
        std::vector<mem::Request> decoded;
        for (std::size_t at = 0; at < requests.size(); at += chunk) {
            const std::size_t n =
                std::min(chunk, requests.size() - at);
            ASSERT_TRUE(mem::decodeRequests(r, n, decoded, dec));
        }
        ASSERT_EQ(decoded.size(), requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i)
            EXPECT_EQ(decoded[i], requests[i]);
    }
}

TEST(RequestWire, BackwardDeltasSurvive)
{
    // Ticks normally never decrease, but the codec must not rely on it
    // (LoopedSynthesis restarts, merged multi-source streams).
    std::vector<mem::Request> requests;
    requests.push_back({100, 0x1000, 64, mem::Op::Read});
    requests.push_back({40, 0x800, 4, mem::Op::Write});
    requests.push_back({40, 0xffff'ffff'ffff'0000ull, 1, mem::Op::Read});
    requests.push_back({41, 0x0, 0xffff'ffffu, mem::Op::Write});

    util::ByteWriter w;
    mem::RequestCodecState enc;
    mem::encodeRequests(w, requests.data(), requests.size(), enc);
    util::ByteReader r(w.bytes());
    mem::RequestCodecState dec;
    std::vector<mem::Request> decoded;
    ASSERT_TRUE(
        mem::decodeRequests(r, requests.size(), decoded, dec));
    ASSERT_EQ(decoded.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
        EXPECT_EQ(decoded[i], requests[i]);
}

TEST(RequestWire, TruncatedAndMalformedInputRejected)
{
    const auto requests = randomRequests(20, 3);
    util::ByteWriter w;
    mem::RequestCodecState enc;
    mem::encodeRequests(w, requests.data(), requests.size(), enc);

    // Truncation anywhere fails instead of inventing records.
    std::vector<std::uint8_t> cut(w.bytes().begin(),
                                  w.bytes().end() - 1);
    util::ByteReader r1(cut);
    mem::RequestCodecState dec1;
    std::vector<mem::Request> out1;
    EXPECT_FALSE(mem::decodeRequests(r1, requests.size(), out1, dec1));

    // A zero size (packed value with no payload bits) is malformed.
    util::ByteWriter bad;
    bad.putSigned(0); // dtick
    bad.putSigned(0); // daddr
    bad.putVarint(0); // size 0, op Read
    util::ByteReader r2(bad.bytes());
    mem::RequestCodecState dec2;
    std::vector<mem::Request> out2;
    EXPECT_FALSE(mem::decodeRequests(r2, 1, out2, dec2));
}

} // namespace
