#include "mem/trace_stats.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace mocktails::mem;

TEST(TraceStats, EmptyTrace)
{
    const TraceStats s = computeStats(Trace{});
    EXPECT_EQ(s.requests, 0u);
    EXPECT_EQ(s.readFraction(), 0.0);
    EXPECT_EQ(s.requestRate(), 0.0);
}

TEST(TraceStats, CountsReadsAndWrites)
{
    Trace t;
    t.add(0, 0x1000, 64, Op::Read);
    t.add(10, 0x2000, 32, Op::Write);
    t.add(20, 0x3000, 64, Op::Read);
    const TraceStats s = computeStats(t);
    EXPECT_EQ(s.requests, 3u);
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.bytesRead, 128u);
    EXPECT_EQ(s.bytesWritten, 32u);
    EXPECT_NEAR(s.readFraction(), 2.0 / 3.0, 1e-12);
}

TEST(TraceStats, AddressAndTickBounds)
{
    Trace t;
    t.add(5, 0x2000, 64, Op::Read);
    t.add(2, 0x1000, 16, Op::Read);
    t.add(9, 0x3000, 64, Op::Read);
    const TraceStats s = computeStats(t);
    EXPECT_EQ(s.minAddr, 0x1000u);
    EXPECT_EQ(s.maxAddr, 0x3040u);
    EXPECT_EQ(s.firstTick, 2u);
    EXPECT_EQ(s.lastTick, 9u);
}

TEST(TraceStats, Footprint4kCountsPages)
{
    Trace t;
    t.add(0, 0x0000, 64, Op::Read); // page 0
    t.add(1, 0x0800, 64, Op::Read); // page 0 again
    t.add(2, 0x1000, 64, Op::Read); // page 1
    const TraceStats s = computeStats(t);
    EXPECT_EQ(s.touched4k, 2u);
}

TEST(TraceStats, PageSpanningRequestCountsBothPages)
{
    Trace t;
    t.add(0, 0x0fc0, 128, Op::Read); // crosses the 4K boundary
    const TraceStats s = computeStats(t);
    EXPECT_EQ(s.touched4k, 2u);
}

TEST(TraceStats, RequestRatePerKilocycle)
{
    Trace t;
    for (int i = 0; i < 11; ++i)
        t.add(static_cast<Tick>(i * 100), 0, 4, Op::Read);
    // 11 requests over 1000 cycles = 11 per kilocycle.
    EXPECT_NEAR(computeStats(t).requestRate(), 11.0, 1e-9);
}

TEST(TraceStats, ZeroSpanRate)
{
    Trace t;
    t.add(5, 0, 4, Op::Read);
    t.add(5, 4, 4, Op::Read);
    EXPECT_EQ(computeStats(t).requestRate(), 0.0);
}

} // namespace
