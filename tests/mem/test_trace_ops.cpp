#include "mem/trace_ops.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace
{

using namespace mocktails::mem;

Trace
sample()
{
    Trace t("s", "CPU");
    t.add(0, 0x100, 64, Op::Read);
    t.add(10, 0x200, 32, Op::Write);
    t.add(20, 0x300, 64, Op::Read);
    t.add(30, 0x140, 16, Op::Write);
    return t;
}

TEST(TraceOps, SliceTimeHalfOpen)
{
    const Trace out = sliceTime(sample(), 10, 30);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].tick, 10u);
    EXPECT_EQ(out[1].tick, 20u);
    EXPECT_EQ(out.name(), "s");
}

TEST(TraceOps, SliceTimeEmptyWindow)
{
    EXPECT_TRUE(sliceTime(sample(), 100, 200).empty());
}

TEST(TraceOps, SliceAddressesIntersectsRanges)
{
    // [0x130, 0x150) intersects the requests at 0x100 (+64) and
    // 0x140 (+16) but not 0x200/0x300.
    const Trace out = sliceAddresses(sample(), 0x130, 0x150);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].addr, 0x100u);
    EXPECT_EQ(out[1].addr, 0x140u);
}

TEST(TraceOps, SliceAddressesBoundaryExclusive)
{
    // The request at 0x100 spans [0x100, 0x140), which ends exactly
    // at the window start: excluded. Only the 0x140 request matches.
    const Trace out = sliceAddresses(sample(), 0x140, 0x141);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 0x140u);
}

TEST(TraceOps, FilterOp)
{
    const Trace reads = filterOp(sample(), Op::Read);
    ASSERT_EQ(reads.size(), 2u);
    for (const auto &r : reads)
        EXPECT_TRUE(r.isRead());
    const Trace writes = filterOp(sample(), Op::Write);
    EXPECT_EQ(writes.size(), 2u);
}

TEST(TraceOps, MergeInterleavesByTime)
{
    Trace a;
    a.add(0, 1, 4, Op::Read);
    a.add(20, 2, 4, Op::Read);
    Trace b;
    b.add(10, 3, 4, Op::Write);
    b.add(30, 4, 4, Op::Write);

    const Trace out = merge({&a, &b});
    ASSERT_EQ(out.size(), 4u);
    EXPECT_TRUE(out.isTimeOrdered());
    EXPECT_EQ(out[0].addr, 1u);
    EXPECT_EQ(out[1].addr, 3u);
    EXPECT_EQ(out[2].addr, 2u);
    EXPECT_EQ(out[3].addr, 4u);
}

TEST(TraceOps, MergeTiesKeepTraceOrder)
{
    Trace a, b;
    a.add(5, 0xa, 4, Op::Read);
    b.add(5, 0xb, 4, Op::Read);
    const Trace out = merge({&a, &b});
    EXPECT_EQ(out[0].addr, 0xau);
    EXPECT_EQ(out[1].addr, 0xbu);
}

TEST(TraceOps, MergeManyRandomTracesIsSorted)
{
    mocktails::util::Rng rng(8);
    std::vector<Trace> traces(5);
    std::size_t total = 0;
    for (auto &t : traces) {
        Tick tick = rng.below(100);
        const std::size_t n = 50 + rng.below(100);
        for (std::size_t i = 0; i < n; ++i) {
            t.add(tick, rng.below(1 << 16), 4, Op::Read);
            tick += rng.below(20);
        }
        total += n;
    }
    std::vector<const Trace *> pointers;
    for (const auto &t : traces)
        pointers.push_back(&t);
    const Trace out = merge(pointers);
    EXPECT_EQ(out.size(), total);
    EXPECT_TRUE(out.isTimeOrdered());
}

TEST(TraceOps, MergeEmptyInputs)
{
    EXPECT_TRUE(merge({}).empty());
    Trace empty;
    EXPECT_TRUE(merge({&empty}).empty());
}

TEST(TraceOps, ShiftTime)
{
    const Trace out = shiftTime(sample(), 100);
    EXPECT_EQ(out[0].tick, 100u);
    EXPECT_EQ(out[3].tick, 130u);
    const Trace back = shiftTime(out, -100);
    EXPECT_EQ(back[0].tick, 0u);
}

} // namespace
