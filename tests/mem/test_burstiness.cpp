#include "mem/burstiness.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace mocktails::mem;

TEST(Burstiness, EmptyTrace)
{
    const BurstinessStats s = analyzeBurstiness(Trace{});
    EXPECT_EQ(s.bursts, 0u);
    EXPECT_EQ(s.meanBurstLength, 0.0);
}

TEST(Burstiness, SingleRequestIsOneBurst)
{
    Trace t;
    t.add(100, 0, 4, Op::Read);
    const BurstinessStats s = analyzeBurstiness(t);
    EXPECT_EQ(s.bursts, 1u);
    EXPECT_EQ(s.maxBurstLength, 1u);
    EXPECT_DOUBLE_EQ(s.activeFraction, 1.0);
}

TEST(Burstiness, TwoBurstsSeparatedByIdle)
{
    Trace t;
    // Burst 1: 3 requests, 10 cycles apart.
    for (int i = 0; i < 3; ++i)
        t.add(static_cast<Tick>(i * 10), 0, 4, Op::Read);
    // 100000-cycle idle gap.
    for (int i = 0; i < 5; ++i)
        t.add(static_cast<Tick>(100020 + i * 10), 0, 4, Op::Read);

    const BurstinessStats s = analyzeBurstiness(t, 1000);
    EXPECT_EQ(s.bursts, 2u);
    EXPECT_DOUBLE_EQ(s.meanBurstLength, 4.0); // (3 + 5) / 2
    EXPECT_EQ(s.maxBurstLength, 5u);
    EXPECT_EQ(s.maxIdleGap, 100000u);
    EXPECT_LT(s.activeFraction, 0.01);
}

TEST(Burstiness, PeriodicStreamIsOneBurstAndAntibursty)
{
    Trace t;
    for (int i = 0; i < 1000; ++i)
        t.add(static_cast<Tick>(i * 50), 0, 4, Op::Read);
    const BurstinessStats s = analyzeBurstiness(t, 1000);
    EXPECT_EQ(s.bursts, 1u);
    EXPECT_DOUBLE_EQ(s.activeFraction, 1.0);
    // Perfectly periodic: coefficient -> -1.
    EXPECT_LT(s.coefficient, -0.9);
}

TEST(Burstiness, BurstyStreamHasPositiveCoefficient)
{
    Trace t;
    Tick tick = 0;
    for (int burst = 0; burst < 50; ++burst) {
        for (int i = 0; i < 50; ++i) {
            t.add(tick, 0, 4, Op::Read);
            tick += 1;
        }
        tick += 500000; // long idle
    }
    const BurstinessStats s = analyzeBurstiness(t, 1000);
    EXPECT_EQ(s.bursts, 50u);
    EXPECT_GT(s.coefficient, 0.5);
    EXPECT_LT(s.activeFraction, 0.01);
    EXPECT_NEAR(s.meanIdleGap, 500000.0, 1.0);
}

TEST(Burstiness, ThresholdControlsSegmentation)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.add(static_cast<Tick>(i * 100), 0, 4, Op::Read);
    // Gap 100: one burst with threshold 1000, ten with threshold 50.
    EXPECT_EQ(analyzeBurstiness(t, 1000).bursts, 1u);
    EXPECT_EQ(analyzeBurstiness(t, 50).bursts, 10u);
}

} // namespace
