#include "mem/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/rng.hpp"

namespace
{

using namespace mocktails::mem;

Trace
makeSample(std::size_t n)
{
    Trace t("sample", "CPU");
    mocktails::util::Rng rng(3);
    Tick tick = 0;
    Addr addr = 0x1000;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(100);
        addr += static_cast<Addr>(rng.between(-512, 512) & ~7ll);
        t.add(tick, addr, rng.chance(0.5) ? 64 : 128,
              rng.chance(0.3) ? Op::Write : Op::Read);
    }
    return t;
}

TEST(TraceIo, BinaryRoundTripEmpty)
{
    Trace t("empty", "DPU");
    Trace out;
    ASSERT_TRUE(decodeTrace(encodeTrace(t), out));
    EXPECT_EQ(out.name(), "empty");
    EXPECT_EQ(out.device(), "DPU");
    EXPECT_TRUE(out.empty());
}

TEST(TraceIo, BinaryRoundTripPreservesRequests)
{
    const Trace t = makeSample(5000);
    Trace out;
    ASSERT_TRUE(decodeTrace(encodeTrace(t), out));
    ASSERT_EQ(out.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(out[i], t[i]) << "at index " << i;
}

TEST(TraceIo, EncodedFormIsCompact)
{
    const Trace t = makeSample(10000);
    const auto bytes = encodeTrace(t);
    // A raw struct dump would be ~21 bytes per request.
    EXPECT_LT(bytes.size(), t.size() * 12);
}

TEST(TraceIo, DecodeRejectsGarbage)
{
    Trace out;
    EXPECT_FALSE(decodeTrace({1, 2, 3, 4}, out));
}

TEST(TraceIo, DecodeRejectsTruncated)
{
    auto bytes = encodeTrace(makeSample(100));
    bytes.resize(bytes.size() / 3);
    Trace out;
    EXPECT_FALSE(decodeTrace(bytes, out));
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "trace_io_test.mkt";
    const Trace t = makeSample(500);
    ASSERT_TRUE(saveTrace(t, path));
    Trace out;
    ASSERT_TRUE(loadTrace(path, out));
    EXPECT_EQ(out.size(), t.size());
    EXPECT_EQ(out.requests(), t.requests());
    std::remove(path.c_str());
}

TEST(TraceIo, CsvRoundTrip)
{
    const std::string path = testing::TempDir() + "trace_io_test.csv";
    const Trace t = makeSample(200);
    ASSERT_TRUE(saveTraceCsv(t, path));
    Trace out;
    ASSERT_TRUE(loadTraceCsv(path, out));
    ASSERT_EQ(out.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(out[i], t[i]);
    std::remove(path.c_str());
}

TEST(TraceIo, CsvHasHeader)
{
    const std::string path = testing::TempDir() + "trace_hdr_test.csv";
    ASSERT_TRUE(saveTraceCsv(makeSample(1), path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[64] = {};
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    std::fclose(f);
    EXPECT_STREQ(line, "tick,addr,op,size\n");
    std::remove(path.c_str());
}

TEST(TraceIo, SaveToBadPathFails)
{
    EXPECT_FALSE(saveTrace(makeSample(1), "/nonexistent/dir/x.mkt"));
    EXPECT_FALSE(saveTraceCsv(makeSample(1), "/nonexistent/dir/x.csv"));
}

/** Write @p content verbatim and return the path. */
std::string
writeCsv(const char *name, const std::string &content)
{
    const std::string path = testing::TempDir() + name;
    std::FILE *f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return path;
}

TEST(TraceIo, CsvParseErrorNamesFileAndLine)
{
    const std::string path = writeCsv("csv_badline.csv",
                                      "tick,addr,op,size\n"
                                      "10,0x1000,R,64\n"
                                      "not a record\n"
                                      "20,0x1040,W,64\n");
    Trace out;
    std::string error;
    EXPECT_FALSE(loadTraceCsv(path, out, &error));
    EXPECT_NE(error.find(path + ":3:"), std::string::npos) << error;
    EXPECT_NE(error.find("not a record"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceIo, CsvRejectsUnknownOp)
{
    const std::string path = writeCsv("csv_badop.csv",
                                      "tick,addr,op,size\n"
                                      "10,0x1000,X,64\n");
    Trace out;
    std::string error;
    EXPECT_FALSE(loadTraceCsv(path, out, &error));
    EXPECT_NE(error.find(":2:"), std::string::npos) << error;
    EXPECT_NE(error.find("unknown op"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceIo, CsvRejectsTrailingGarbage)
{
    const std::string path = writeCsv("csv_trailing.csv",
                                      "10,0x1000,R,64,extra\n");
    Trace out;
    std::string error;
    EXPECT_FALSE(loadTraceCsv(path, out, &error));
    EXPECT_NE(error.find(":1:"), std::string::npos) << error;
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceIo, CsvHandlesLinesLongerThanAnyFixedBuffer)
{
    // A valid record padded past the historical 256-byte read buffer:
    // a fixed-size fgets would split it into two bogus lines.
    std::string long_line(400, ' ');
    long_line += "10,0x1000,R,64";
    const std::string path = writeCsv(
        "csv_longline.csv",
        "tick,addr,op,size\n" + long_line + "\n20,0x1040,W,128\n");
    Trace out;
    std::string error;
    ASSERT_TRUE(loadTraceCsv(path, out, &error)) << error;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].tick, 10u);
    EXPECT_EQ(out[0].addr, 0x1000u);
    EXPECT_EQ(out[1].op, Op::Write);
    std::remove(path.c_str());
}

TEST(TraceIo, CsvLongInvalidLineReportsItsOwnLineNumber)
{
    const std::string path = writeCsv(
        "csv_longbad.csv", "tick,addr,op,size\n10,0x1000,R,64\n" +
                               std::string(500, 'z') + "\n");
    Trace out;
    std::string error;
    EXPECT_FALSE(loadTraceCsv(path, out, &error));
    EXPECT_NE(error.find(":3:"), std::string::npos) << error;
    // The quoted excerpt is clipped, not the whole 500-char line.
    EXPECT_LT(error.size(), 200u);
    std::remove(path.c_str());
}

TEST(TraceIo, CsvMissingFileReportsPath)
{
    Trace out;
    std::string error;
    EXPECT_FALSE(loadTraceCsv("/nonexistent/x.csv", out, &error));
    EXPECT_NE(error.find("/nonexistent/x.csv"), std::string::npos);
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(TraceIo, CsvSkipsBlankLinesAndWindowsLineEndings)
{
    const std::string path = writeCsv("csv_crlf.csv",
                                      "tick,addr,op,size\r\n"
                                      "10,0x1000,R,64\r\n"
                                      "\n"
                                      "20,0x1040,W,32\n");
    Trace out;
    std::string error;
    ASSERT_TRUE(loadTraceCsv(path, out, &error)) << error;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].size, 32u);
    std::remove(path.c_str());
}

} // namespace
