#include "mem/trace_reader.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "mem/trace_io.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::mem;

class TraceReaderTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        for (const std::string &path : files_)
            std::remove(path.c_str());
    }

    std::string
    tempPath(const std::string &suffix)
    {
        const std::string path =
            ::testing::TempDir() + "trace_reader_" +
            std::to_string(files_.size()) + suffix;
        files_.push_back(path);
        return path;
    }

  private:
    std::vector<std::string> files_;
};

Trace
makeTrace(std::size_t n)
{
    util::Rng rng(7);
    Trace trace("reader-test", "DSP");
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(100);
        trace.add(tick, 0x1000 + rng.below(1 << 16) * 4,
                  static_cast<std::uint32_t>(4 << rng.below(5)),
                  rng.chance(0.5) ? Op::Write : Op::Read);
    }
    return trace;
}

/** Drain @p reader in chunks of @p chunk into one trace. */
Trace
drain(TraceReader &reader, std::size_t chunk)
{
    Trace out(reader.name(), reader.device());
    RequestBatch batch;
    while (reader.read(batch, chunk) > 0)
        batch.appendTo(out);
    return out;
}

void
expectSameRequests(const Trace &expected, const Trace &actual)
{
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].tick, actual[i].tick) << i;
        EXPECT_EQ(expected[i].addr, actual[i].addr) << i;
        EXPECT_EQ(expected[i].size, actual[i].size) << i;
        EXPECT_EQ(expected[i].op, actual[i].op) << i;
    }
}

TEST_F(TraceReaderTest, MemoryReaderStreamsWholeTrace)
{
    const Trace trace = makeTrace(1000);
    for (const std::size_t chunk : {std::size_t(1), std::size_t(64),
                                    std::size_t(5000)}) {
        MemoryTraceReader reader(trace);
        EXPECT_EQ(reader.sizeHint(), trace.size());
        const Trace copy = drain(reader, chunk);
        EXPECT_EQ(copy.name(), "reader-test");
        EXPECT_EQ(copy.device(), "DSP");
        expectSameRequests(trace, copy);
    }
}

TEST_F(TraceReaderTest, CsvReaderMatchesLoadTraceCsv)
{
    const Trace trace = makeTrace(500);
    const std::string path = tempPath(".csv");
    ASSERT_TRUE(saveTraceCsv(trace, path));

    Trace loaded;
    ASSERT_TRUE(loadTraceCsv(path, loaded));

    std::string error;
    auto reader = openTraceReader(path, &error);
    ASSERT_NE(reader, nullptr) << error;
    const Trace streamed = drain(*reader, 77);
    ASSERT_TRUE(reader->error().empty()) << reader->error();
    expectSameRequests(loaded, streamed);
}

TEST_F(TraceReaderTest, BinaryReaderMatchesLoadTrace)
{
    const Trace trace = makeTrace(500);
    const std::string path = tempPath(".mkt");
    ASSERT_TRUE(saveTrace(trace, path));

    std::string error;
    auto reader = openTraceReader(path, &error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_EQ(reader->name(), "reader-test");
    EXPECT_EQ(reader->device(), "DSP");
    EXPECT_EQ(reader->sizeHint(), trace.size());
    const Trace streamed = drain(*reader, 33);
    ASSERT_TRUE(reader->error().empty()) << reader->error();
    expectSameRequests(trace, streamed);
}

TEST_F(TraceReaderTest, MissingFileFailsLoudly)
{
    std::string error;
    EXPECT_EQ(openTraceReader("/no/such/file.csv", &error), nullptr);
    EXPECT_NE(error.find("/no/such/file.csv"), std::string::npos);
    error.clear();
    EXPECT_EQ(openTraceReader("/no/such/file.mkt", &error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST_F(TraceReaderTest, CorruptCsvRowStopsWithDiagnostic)
{
    const std::string path = tempPath(".csv");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("tick,addr,op,size\n", f);
    std::fputs("10,0x1000,R,64\n", f);
    std::fputs("20,0x2000,X,64\n", f); // bad op on line 3
    std::fclose(f);

    std::string error;
    auto reader = openTraceReader(path, &error);
    ASSERT_NE(reader, nullptr) << error;
    RequestBatch batch;
    EXPECT_EQ(reader->read(batch, 1), 1u); // first row is fine
    EXPECT_EQ(reader->read(batch, 10), 0u);
    EXPECT_NE(reader->error().find(":3:"), std::string::npos)
        << reader->error();
}

TEST_F(TraceReaderTest, CorruptBinaryFailsLoudly)
{
    const std::string path = tempPath(".mkt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace", f);
    std::fclose(f);
    std::string error;
    EXPECT_EQ(openTraceReader(path, &error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST_F(TraceReaderTest, EmptyTraceRoundTrips)
{
    const Trace trace("empty", "CPU");
    const std::string bin = tempPath(".mkt");
    ASSERT_TRUE(saveTrace(trace, bin));
    std::string error;
    auto reader = openTraceReader(bin, &error);
    ASSERT_NE(reader, nullptr) << error;
    RequestBatch batch;
    EXPECT_EQ(reader->read(batch, 16), 0u);
    EXPECT_TRUE(reader->error().empty());
}

TEST(RequestBatchTest, RoundTripsRequestsAndTraces)
{
    RequestBatch batch;
    EXPECT_TRUE(batch.empty());
    batch.push(10, 0x100, 64, Op::Read);
    batch.push(Request{20, 0x200, 32, Op::Write});
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.get(0).tick, 10u);
    EXPECT_EQ(batch.get(1).op, Op::Write);
    EXPECT_EQ(batch.end(1), 0x220u);

    Trace trace("t", "d");
    batch.appendTo(trace);
    ASSERT_EQ(trace.size(), 2u);

    const RequestBatch copy = RequestBatch::fromTrace(trace);
    ASSERT_EQ(copy.size(), 2u);
    EXPECT_EQ(copy.get(0).addr, 0x100u);
    EXPECT_EQ(copy.get(1).size, 32u);
}

TEST(RequestBatchTest, BatchSourceReplaysLikeTraceSource)
{
    Trace trace("t", "d");
    trace.add(5, 0x40, 16, Op::Read);
    trace.add(9, 0x80, 16, Op::Write);
    const RequestBatch batch = RequestBatch::fromTrace(trace);
    BatchSource source(batch);
    Request r;
    ASSERT_TRUE(source.next(r));
    EXPECT_EQ(r.tick, 5u);
    ASSERT_TRUE(source.next(r));
    EXPECT_EQ(r.addr, 0x80u);
    EXPECT_FALSE(source.next(r));
    source.reset();
    ASSERT_TRUE(source.next(r));
    EXPECT_EQ(r.tick, 5u);
}

} // namespace
