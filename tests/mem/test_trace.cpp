#include "mem/trace.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace mocktails::mem;

TEST(Request, EndIsExclusive)
{
    Request r{0, 0x100, 64, Op::Read};
    EXPECT_EQ(r.end(), 0x140u);
}

TEST(Request, OpPredicates)
{
    Request r{0, 0, 4, Op::Read};
    EXPECT_TRUE(r.isRead());
    EXPECT_FALSE(r.isWrite());
    r.op = Op::Write;
    EXPECT_TRUE(r.isWrite());
}

TEST(Request, Equality)
{
    Request a{1, 2, 3, Op::Read};
    Request b = a;
    EXPECT_EQ(a, b);
    b.size = 4;
    EXPECT_FALSE(a == b);
}

TEST(Op, ToString)
{
    EXPECT_STREQ(toString(Op::Read), "R");
    EXPECT_STREQ(toString(Op::Write), "W");
}

TEST(Trace, MetadataAndAppend)
{
    Trace t("HEVC1", "VPU");
    EXPECT_EQ(t.name(), "HEVC1");
    EXPECT_EQ(t.device(), "VPU");
    EXPECT_TRUE(t.empty());

    t.add(10, 0x1000, 64, Op::Write);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].tick, 10u);
    EXPECT_EQ(t[0].op, Op::Write);
}

TEST(Trace, SortByTimeIsStable)
{
    Trace t;
    t.add(5, 0xa, 4, Op::Read);
    t.add(1, 0xb, 4, Op::Read);
    t.add(5, 0xc, 4, Op::Write);
    t.sortByTime();
    EXPECT_TRUE(t.isTimeOrdered());
    EXPECT_EQ(t[0].addr, 0xbu);
    // Stability: the two tick-5 requests keep their relative order.
    EXPECT_EQ(t[1].addr, 0xau);
    EXPECT_EQ(t[2].addr, 0xcu);
}

TEST(Trace, IsTimeOrderedDetectsViolation)
{
    Trace t;
    t.add(5, 0, 4, Op::Read);
    t.add(4, 0, 4, Op::Read);
    EXPECT_FALSE(t.isTimeOrdered());
}

TEST(Trace, EmptyIsOrdered)
{
    Trace t;
    EXPECT_TRUE(t.isTimeOrdered());
    EXPECT_EQ(t.duration(), 0u);
}

TEST(Trace, DurationIsLastTick)
{
    Trace t;
    t.add(3, 0, 4, Op::Read);
    t.add(9, 0, 4, Op::Read);
    EXPECT_EQ(t.duration(), 9u);
}

TEST(Trace, TruncateShrinksOnly)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.add(i, 0, 4, Op::Read);
    t.truncate(20);
    EXPECT_EQ(t.size(), 10u);
    t.truncate(4);
    EXPECT_EQ(t.size(), 4u);
}

TEST(Trace, RangeForIteration)
{
    Trace t;
    t.add(0, 1, 4, Op::Read);
    t.add(1, 2, 4, Op::Read);
    std::uint64_t sum = 0;
    for (const Request &r : t)
        sum += r.addr;
    EXPECT_EQ(sum, 3u);
}

} // namespace
