#include "mem/interop.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace
{

using namespace mocktails::mem;

Trace
sample()
{
    Trace t;
    t.add(0, 0x1000, 64, Op::Read);
    t.add(4, 0x2040, 64, Op::Write);
    t.add(9, 0xdeadbe00, 64, Op::Read);
    return t;
}

TEST(Interop, RamulatorRoundTrip)
{
    const std::string path = testing::TempDir() + "ram_trace.txt";
    ASSERT_TRUE(saveRamulatorTrace(sample(), path));

    Trace loaded;
    ASSERT_TRUE(loadRamulatorTrace(path, loaded, 64, 1));
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[0].addr, 0x1000u);
    EXPECT_EQ(loaded[0].op, Op::Read);
    EXPECT_EQ(loaded[1].addr, 0x2040u);
    EXPECT_EQ(loaded[1].op, Op::Write);
    EXPECT_EQ(loaded[2].addr, 0xdeadbe00u);
    // Ticks are synthesised back-to-back with the requested gap.
    EXPECT_EQ(loaded[1].tick, 1u);
    EXPECT_EQ(loaded[2].tick, 2u);
    EXPECT_EQ(loaded[0].size, 64u);
    std::remove(path.c_str());
}

TEST(Interop, RamulatorFormatIsExact)
{
    const std::string path = testing::TempDir() + "ram_fmt.txt";
    ASSERT_TRUE(saveRamulatorTrace(sample(), path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[64] = {};
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_STREQ(line, "0x1000 R\n");
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_STREQ(line, "0x2040 W\n");
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Interop, RamulatorCustomSizeAndGap)
{
    const std::string path = testing::TempDir() + "ram_gap.txt";
    ASSERT_TRUE(saveRamulatorTrace(sample(), path));
    Trace loaded;
    ASSERT_TRUE(loadRamulatorTrace(path, loaded, 32, 10));
    EXPECT_EQ(loaded[0].size, 32u);
    EXPECT_EQ(loaded[2].tick, 20u);
    std::remove(path.c_str());
}

TEST(Interop, RamulatorRejectsGarbage)
{
    const std::string path = testing::TempDir() + "ram_bad.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "not a trace line\n");
    std::fclose(f);
    Trace loaded;
    EXPECT_FALSE(loadRamulatorTrace(path, loaded));
    std::remove(path.c_str());
}

TEST(Interop, RamulatorSkipsCommentsAndBlanks)
{
    const std::string path = testing::TempDir() + "ram_comment.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "# header comment\n\n0x40 R\n");
    std::fclose(f);
    Trace loaded;
    ASSERT_TRUE(loadRamulatorTrace(path, loaded));
    EXPECT_EQ(loaded.size(), 1u);
    std::remove(path.c_str());
}

TEST(Interop, Dramsim3RoundTripPreservesTicks)
{
    const std::string path = testing::TempDir() + "ds3_trace.txt";
    ASSERT_TRUE(saveDramsim3Trace(sample(), path));

    Trace loaded;
    ASSERT_TRUE(loadDramsim3Trace(path, loaded, 64));
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[0].tick, 0u);
    EXPECT_EQ(loaded[1].tick, 4u);
    EXPECT_EQ(loaded[2].tick, 9u);
    EXPECT_EQ(loaded[1].op, Op::Write);
    EXPECT_EQ(loaded[2].addr, 0xdeadbe00u);
    std::remove(path.c_str());
}

TEST(Interop, Dramsim3FormatIsExact)
{
    const std::string path = testing::TempDir() + "ds3_fmt.txt";
    ASSERT_TRUE(saveDramsim3Trace(sample(), path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[64] = {};
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_STREQ(line, "0x1000 READ 0\n");
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_STREQ(line, "0x2040 WRITE 4\n");
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Interop, MissingFilesFail)
{
    Trace t;
    EXPECT_FALSE(loadRamulatorTrace("/nonexistent/x.txt", t));
    EXPECT_FALSE(loadDramsim3Trace("/nonexistent/x.txt", t));
    EXPECT_FALSE(saveRamulatorTrace(sample(), "/nonexistent/x.txt"));
}

} // namespace
