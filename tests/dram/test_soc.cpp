#include "dram/soc.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

mem::Trace
makeStream(mem::Addr base, std::size_t n, mem::Tick gap,
           std::uint64_t seed)
{
    mem::Trace t;
    util::Rng rng(seed);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        t.add(tick, base + static_cast<mem::Addr>(i) * 64, 64,
              rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
        tick += gap;
    }
    return t;
}

TEST(Soc, SingleDeviceMatchesInjection)
{
    const mem::Trace trace = makeStream(0x1000000, 500, 10, 1);
    mem::TraceSource source(trace);
    const auto result = simulateSoc({{"dev", source}});

    ASSERT_EQ(result.devices.size(), 1u);
    EXPECT_EQ(result.devices[0].name, "dev");
    EXPECT_EQ(result.devices[0].injected, 500u);
    EXPECT_EQ(result.devices[0].reads + result.devices[0].writes,
              500u);
    EXPECT_EQ(result.memory.requests, 500u);
    // Every request produced exactly 2 bursts (64B / 32B).
    EXPECT_EQ(result.readBursts() + result.writeBursts(), 1000u);
}

TEST(Soc, PerDeviceLatencyRecorded)
{
    const mem::Trace trace = makeStream(0x1000000, 200, 20, 2);
    mem::TraceSource source(trace);
    const auto result = simulateSoc({{"dev", source}});

    const auto &device = result.devices[0];
    EXPECT_EQ(device.readLatency.count(), device.reads);
    EXPECT_EQ(device.writeLatency.count(), device.writes);
    EXPECT_GT(device.readLatency.mean(), 0.0);
}

TEST(Soc, TwoDevicesConserveRequests)
{
    const mem::Trace a = makeStream(0x1000000, 400, 5, 3);
    const mem::Trace b = makeStream(0x9000000, 300, 7, 4);
    mem::TraceSource sa(a), sb(b);
    const auto result = simulateSoc({{"a", sa}, {"b", sb}});

    EXPECT_EQ(result.devices[0].injected, 400u);
    EXPECT_EQ(result.devices[1].injected, 300u);
    EXPECT_EQ(result.memory.requests, 700u);
    EXPECT_EQ(result.devices[0].readLatency.count() +
                  result.devices[0].writeLatency.count(),
              400u);
    EXPECT_EQ(result.devices[1].readLatency.count() +
                  result.devices[1].writeLatency.count(),
              300u);
}

TEST(Soc, ContentionRaisesLatency)
{
    // A victim stream alone vs. alongside an aggressive neighbour.
    const mem::Trace victim = makeStream(0x1000000, 400, 50, 5);
    mem::TraceSource v1(victim);
    const auto alone = simulateSoc({{"victim", v1}});

    const mem::Trace aggressor = makeStream(0x9000000, 4000, 2, 6);
    mem::TraceSource v2(victim), a2(aggressor);
    const auto shared =
        simulateSoc({{"victim", v2}, {"aggressor", a2}});

    EXPECT_GT(shared.devices[0].readLatency.mean(),
              alone.devices[0].readLatency.mean());
}

TEST(Soc, IndependentPortsIsolateBackpressure)
{
    // The victim's port must not reject just because the aggressor's
    // port is saturated (each device has its own crossbar queue).
    const mem::Trace victim = makeStream(0x1000000, 100, 500, 7);
    const mem::Trace aggressor = makeStream(0x9000000, 5000, 1, 8);
    mem::TraceSource v(victim), a(aggressor);
    const auto result =
        simulateSoc({{"victim", v}, {"aggressor", a}});

    EXPECT_EQ(result.devices[0].injected, 100u);
    EXPECT_EQ(result.devices[1].injected, 5000u);
    // The sparse victim stream should accumulate far less delay than
    // the saturating aggressor.
    EXPECT_LE(result.devices[0].accumulatedDelay,
              result.devices[1].accumulatedDelay);
}

TEST(Soc, SharedLinkConservesRequests)
{
    const mem::Trace a = makeStream(0x1000000, 300, 5, 11);
    const mem::Trace b = makeStream(0x9000000, 200, 8, 12);
    mem::TraceSource sa(a), sb(b);

    SocConfig config;
    config.sharedLink = true;
    const auto result = simulateSoc({{"a", sa}, {"b", sb}}, config);

    EXPECT_EQ(result.memory.requests, 500u);
    ASSERT_EQ(result.linkGrants.size(), 2u);
    EXPECT_EQ(result.linkGrants[0], 300u);
    EXPECT_EQ(result.linkGrants[1], 200u);
    EXPECT_EQ(result.devices[0].readLatency.count() +
                  result.devices[0].writeLatency.count(),
              300u);
}

TEST(Soc, SharedLinkSerializesMoreThanPrivatePorts)
{
    // Two saturating streams: a single arbitrated link is a tighter
    // bottleneck than two private crossbar ports, so the streams take
    // at least as long to finish.
    const mem::Trace a = makeStream(0x1000000, 2000, 1, 13);
    const mem::Trace b = makeStream(0x9000000, 2000, 1, 14);

    mem::TraceSource a1(a), b1(b);
    const auto private_ports =
        simulateSoc({{"a", a1}, {"b", b1}});

    mem::TraceSource a2(a), b2(b);
    SocConfig config;
    config.sharedLink = true;
    config.arbiter.linkLatency = 8;
    const auto shared =
        simulateSoc({{"a", a2}, {"b", b2}}, config);

    const auto finish = [](const SocResult &r) {
        mem::Tick latest = 0;
        for (const auto &d : r.devices)
            latest = std::max(latest, d.finishTick);
        return latest;
    };
    EXPECT_GE(finish(shared), finish(private_ports));
    EXPECT_EQ(shared.memory.requests, 4000u);
}

TEST(Soc, EmptyDeviceList)
{
    const auto result = simulateSoc({});
    EXPECT_TRUE(result.devices.empty());
    EXPECT_EQ(result.memory.requests, 0u);
}

TEST(Soc, DeviceWithEmptySource)
{
    mem::Trace empty;
    mem::TraceSource source(empty);
    const auto result = simulateSoc({{"idle", source}});
    EXPECT_EQ(result.devices[0].injected, 0u);
    EXPECT_EQ(result.devices[0].readLatency.count(), 0u);
}

} // namespace
