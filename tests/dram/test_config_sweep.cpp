/**
 * @file
 * DRAM configuration-space property tests: invariants that must hold
 * for every topology/policy combination, swept with parameterised
 * gtest — conservation of bursts, row-hit bounds, queue-capacity
 * limits and clean drain.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "dram/simulate.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

using Param = std::tuple<std::uint32_t, // channels
                         int,           // mapping
                         int,           // page policy
                         int>;          // scheduling

class DramConfigSweep : public ::testing::TestWithParam<Param>
{
  protected:
    DramConfig
    config() const
    {
        DramConfig c;
        c.channels = std::get<0>(GetParam());
        c.mapping = static_cast<AddressMapping>(std::get<1>(GetParam()));
        c.pagePolicy = static_cast<PagePolicy>(std::get<2>(GetParam()));
        c.scheduling = static_cast<Scheduling>(std::get<3>(GetParam()));
        return c;
    }

    mem::Trace
    trace() const
    {
        mem::Trace t;
        util::Rng rng(123);
        mem::Tick tick = 0;
        for (int i = 0; i < 3000; ++i) {
            tick += rng.below(12);
            const std::uint32_t size = rng.chance(0.3) ? 128 : 64;
            t.add(tick, rng.below(1 << 26) & ~mem::Addr{31}, size,
                  rng.chance(0.35) ? mem::Op::Write : mem::Op::Read);
        }
        return t;
    }
};

TEST_P(DramConfigSweep, ConservesBursts)
{
    const mem::Trace t = trace();
    std::uint64_t expected = 0;
    for (const auto &r : t)
        expected += r.size / 32; // sizes are burst-aligned here

    const auto result = simulateTrace(t, config());
    EXPECT_EQ(result.injected, t.size());
    EXPECT_EQ(result.readBursts() + result.writeBursts(), expected);
}

TEST_P(DramConfigSweep, RowHitsBoundedByBursts)
{
    const auto result = simulateTrace(trace(), config());
    for (const auto &channel : result.channels) {
        EXPECT_LE(channel.readRowHits, channel.readBursts);
        EXPECT_LE(channel.writeRowHits, channel.writeBursts);
    }
}

TEST_P(DramConfigSweep, QueueSamplesRespectCapacity)
{
    const DramConfig c = config();
    const auto result = simulateTrace(trace(), c);
    for (const auto &channel : result.channels) {
        if (channel.readQueueSeen.total() > 0) {
            EXPECT_LT(channel.readQueueSeen.maxValue(),
                      static_cast<std::int64_t>(c.readQueueCapacity));
        }
        if (channel.writeQueueSeen.total() > 0) {
            EXPECT_LT(channel.writeQueueSeen.maxValue(),
                      static_cast<std::int64_t>(c.writeQueueCapacity));
        }
    }
}

TEST_P(DramConfigSweep, LatencyAtLeastUnloadedMinimum)
{
    const DramConfig c = config();
    const auto result = simulateTrace(trace(), c);
    ASSERT_GT(result.memory.readLatency.count(), 0u);
    // No read can complete faster than CAS + burst.
    EXPECT_GE(result.avgReadLatency(), c.tCL + c.tBURST);
}

TEST_P(DramConfigSweep, UtilizationWithinBounds)
{
    const auto result = simulateTrace(trace(), config());
    for (const auto &channel : result.channels) {
        EXPECT_GE(channel.utilization(), 0.0);
        EXPECT_LE(channel.utilization(), 1.0 + 1e-9);
    }
}

std::string
sweepName(const ::testing::TestParamInfo<Param> &info)
{
    static const char *const page[] = {"Open", "Adaptive", "Closed"};
    static const char *const sched[] = {"Fcfs", "FrFcfs"};
    const char *mapping =
        std::get<1>(info.param) == 0 ? "ChCo" : "CoCh";
    return std::to_string(std::get<0>(info.param)) + "ch_" + mapping +
           "_" + page[std::get<2>(info.param)] + "_" +
           sched[std::get<3>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DramConfigSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(0, 1),    // ChCo, CoCh
                       ::testing::Values(0, 1, 2), // page policies
                       ::testing::Values(0, 1)),   // FCFS, FR-FCFS
    sweepName);

} // namespace
