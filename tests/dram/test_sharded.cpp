#include "dram/sharded.hpp"

#include <gtest/gtest.h>

#include "dram/simulate.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

/**
 * Moderate-rate mixed traffic: spread over channels, includes
 * multi-burst (and thus multi-channel) requests, busy enough to
 * trigger refreshes and write-drain turnarounds, but paced so DRAM
 * admission never rejects (the sharded fast path stays valid).
 */
mem::Trace
pacedTrace(std::size_t n, std::uint64_t seed = 11)
{
    mem::Trace t;
    util::Rng rng(seed);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += 40 + rng.below(60);
        const std::uint32_t size = rng.chance(0.3) ? 128 : 64;
        t.add(tick, rng.below(1 << 24) & ~mem::Addr{63}, size,
              rng.chance(0.4) ? mem::Op::Write : mem::Op::Read);
    }
    return t;
}

/** Zero-gap saturating traffic: guaranteed DRAM backpressure. */
mem::Trace
saturatingTrace(std::size_t n)
{
    mem::Trace t;
    for (std::size_t i = 0; i < n; ++i)
        t.add(0, static_cast<mem::Addr>(i) * 128, 128, mem::Op::Read);
    return t;
}

void
expectStatsIdentical(const util::RunningStats &a,
                     const util::RunningStats &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void
expectChannelsIdentical(const ChannelStats &a, const ChannelStats &b)
{
    EXPECT_EQ(a.readBursts, b.readBursts);
    EXPECT_EQ(a.writeBursts, b.writeBursts);
    EXPECT_EQ(a.readRowHits, b.readRowHits);
    EXPECT_EQ(a.writeRowHits, b.writeRowHits);
    EXPECT_EQ(a.perBankReadBursts, b.perBankReadBursts);
    EXPECT_EQ(a.perBankWriteBursts, b.perBankWriteBursts);
    EXPECT_EQ(a.turnarounds, b.turnarounds);
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    EXPECT_EQ(a.lastActiveTick, b.lastActiveTick);
    // Bin-exact histogram equality, not just summary moments.
    EXPECT_EQ(a.readQueueSeen.bins(), b.readQueueSeen.bins());
    EXPECT_EQ(a.writeQueueSeen.bins(), b.writeQueueSeen.bins());
    expectStatsIdentical(a.readsPerTurnaround, b.readsPerTurnaround);
}

void
expectResultsIdentical(const SimulationResult &a,
                       const SimulationResult &b)
{
    EXPECT_EQ(a.memory.requests, b.memory.requests);
    EXPECT_EQ(a.memory.readRequests, b.memory.readRequests);
    EXPECT_EQ(a.memory.writeRequests, b.memory.writeRequests);
    EXPECT_EQ(a.memory.backpressureRejects,
              b.memory.backpressureRejects);
    expectStatsIdentical(a.memory.readLatency, b.memory.readLatency);
    EXPECT_EQ(a.finishTick, b.finishTick);
    EXPECT_EQ(a.accumulatedDelay, b.accumulatedDelay);
    EXPECT_EQ(a.injected, b.injected);
    ASSERT_EQ(a.channels.size(), b.channels.size());
    for (std::size_t c = 0; c < a.channels.size(); ++c) {
        SCOPED_TRACE("channel " + std::to_string(c));
        expectChannelsIdentical(a.channels[c], b.channels[c]);
    }
}

TEST(Sharded, BitIdenticalToCoupledAcrossThreadCounts)
{
    const mem::Trace trace = pacedTrace(4000);
    SimulationOptions coupled;
    coupled.mode = SimulationOptions::Mode::Coupled;
    const SimulationResult reference =
        simulateTrace(trace, DramConfig{},
                      interconnect::CrossbarConfig{}, coupled);

    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        mem::TraceSource source(trace);
        ShardedRun run =
            simulateSharded(source, DramConfig{},
                            interconnect::CrossbarConfig{}, threads);
        // The paced workload must exercise the real sharded path, not
        // the fallback — otherwise this test compares coupled with
        // itself.
        ASSERT_TRUE(run.completed);
        expectResultsIdentical(run.result, reference);
    }
}

TEST(Sharded, WorkloadIsNonTrivial)
{
    // Guard the fixture itself: the equality test above is only
    // meaningful if the workload exercises refresh, write drains and
    // multi-channel requests.
    SimulationOptions coupled;
    coupled.mode = SimulationOptions::Mode::Coupled;
    const SimulationResult r =
        simulateTrace(pacedTrace(4000), DramConfig{},
                      interconnect::CrossbarConfig{}, coupled);
    std::uint64_t refreshes = 0, turnarounds = 0;
    for (const auto &c : r.channels) {
        refreshes += c.refreshes;
        turnarounds += c.turnarounds;
    }
    EXPECT_GT(refreshes, 0u);
    EXPECT_GT(turnarounds, 0u);
    EXPECT_GT(r.writeBursts(), 0u);
    // 128-byte requests span four 32-byte bursts (multi-channel).
    EXPECT_GT(r.readBursts() + r.writeBursts(),
              r.memory.requests);
}

TEST(Sharded, SingleChannelConfig)
{
    DramConfig config;
    config.channels = 1;
    const mem::Trace trace = pacedTrace(1500, 23);
    SimulationOptions coupled;
    coupled.mode = SimulationOptions::Mode::Coupled;
    const SimulationResult reference = simulateTrace(
        trace, config, interconnect::CrossbarConfig{}, coupled);

    mem::TraceSource source(trace);
    ShardedRun run = simulateSharded(
        source, config, interconnect::CrossbarConfig{}, 2);
    ASSERT_TRUE(run.completed);
    expectResultsIdentical(run.result, reference);
}

TEST(Sharded, OverloadAbortsAndRecordsStream)
{
    const mem::Trace trace = saturatingTrace(3000);
    mem::TraceSource source(trace);
    ShardedRun run = simulateSharded(
        source, DramConfig{}, interconnect::CrossbarConfig{}, 4);
    EXPECT_FALSE(run.completed);
    // The recorded stream lets the caller replay the coupled path.
    EXPECT_EQ(run.recorded.size(), trace.size());
    EXPECT_EQ(run.recorded.get(0), trace[0]);
}

TEST(Sharded, ForcedShardedModeFallsBackUnderOverload)
{
    const mem::Trace trace = saturatingTrace(3000);
    SimulationOptions coupled;
    coupled.mode = SimulationOptions::Mode::Coupled;
    const SimulationResult reference =
        simulateTrace(trace, DramConfig{},
                      interconnect::CrossbarConfig{}, coupled);

    SimulationOptions sharded;
    sharded.mode = SimulationOptions::Mode::Sharded;
    sharded.threads = 4;
    const SimulationResult result = simulateTrace(
        trace, DramConfig{}, interconnect::CrossbarConfig{}, sharded);
    EXPECT_GT(result.accumulatedDelay, 0u);
    expectResultsIdentical(result, reference);
}

TEST(Sharded, ShardedModeViaSimulateTrace)
{
    const mem::Trace trace = pacedTrace(2000, 7);
    SimulationOptions coupled;
    coupled.mode = SimulationOptions::Mode::Coupled;
    const SimulationResult reference =
        simulateTrace(trace, DramConfig{},
                      interconnect::CrossbarConfig{}, coupled);

    for (const unsigned threads : {2u, 4u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimulationOptions sharded;
        sharded.mode = SimulationOptions::Mode::Sharded;
        sharded.threads = threads;
        const SimulationResult result =
            simulateTrace(trace, DramConfig{},
                          interconnect::CrossbarConfig{}, sharded);
        expectResultsIdentical(result, reference);
    }
}

TEST(Sharded, EmptyTrace)
{
    const mem::Trace trace;
    mem::TraceSource source(trace);
    ShardedRun run = simulateSharded(
        source, DramConfig{}, interconnect::CrossbarConfig{}, 2);
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(run.result.memory.requests, 0u);
    EXPECT_EQ(run.result.injected, 0u);
    EXPECT_EQ(run.result.readBursts() + run.result.writeBursts(), 0u);
}

} // namespace
