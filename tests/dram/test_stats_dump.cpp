#include "dram/stats_dump.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

SimulationResult
sampleResult()
{
    mem::Trace trace;
    util::Rng rng(4);
    mem::Tick tick = 0;
    for (int i = 0; i < 500; ++i) {
        tick += rng.below(20);
        trace.add(tick, rng.below(1 << 20) & ~mem::Addr{63}, 64,
                  rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    return simulateTrace(trace);
}

TEST(StatsDump, ContainsHeaderAndFooter)
{
    const std::string dump = dumpStats(sampleResult());
    EXPECT_NE(dump.find("Begin Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(dump.find("End Simulation Statistics"),
              std::string::npos);
}

TEST(StatsDump, UsesPrefix)
{
    const std::string dump =
        dumpStats(sampleResult(), "system.mem_ctrls");
    EXPECT_NE(dump.find("system.mem_ctrls.requests"),
              std::string::npos);
    EXPECT_NE(dump.find("system.mem_ctrls.ctrl0.readRowHits"),
              std::string::npos);
    EXPECT_NE(dump.find("system.mem_ctrls.ctrl3.bank7.writeBursts"),
              std::string::npos);
}

TEST(StatsDump, ValuesMatchResult)
{
    const auto result = sampleResult();
    const std::string dump = dumpStats(result, "m");
    char expected[64];
    std::snprintf(expected, sizeof(expected), "%llu",
                  static_cast<unsigned long long>(
                      result.memory.requests));
    // The requests line carries the right value.
    const auto pos = dump.find("m.requests");
    ASSERT_NE(pos, std::string::npos);
    const auto line_end = dump.find('\n', pos);
    EXPECT_NE(dump.substr(pos, line_end - pos).find(expected),
              std::string::npos);
}

TEST(StatsDump, EveryLineHasDescription)
{
    const std::string dump = dumpStats(sampleResult());
    std::size_t start = 0;
    int stat_lines = 0;
    while (start < dump.size()) {
        std::size_t end = dump.find('\n', start);
        if (end == std::string::npos)
            end = dump.size();
        const std::string line = dump.substr(start, end - start);
        if (line.find("----------") == std::string::npos) {
            EXPECT_NE(line.find('#'), std::string::npos) << line;
            ++stat_lines;
        }
        start = end + 1;
    }
    EXPECT_GT(stat_lines, 40);
}

} // namespace
