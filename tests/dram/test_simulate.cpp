#include "dram/simulate.hpp"

#include <gtest/gtest.h>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

mem::Trace
makeTrace(std::size_t n)
{
    mem::Trace t;
    util::Rng rng(9);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(30);
        t.add(tick, rng.below(1 << 24) & ~mem::Addr{63}, 64,
              rng.chance(0.4) ? mem::Op::Write : mem::Op::Read);
    }
    return t;
}

TEST(Simulate, TraceRunsToCompletion)
{
    const mem::Trace trace = makeTrace(2000);
    const auto result = simulateTrace(trace);
    EXPECT_EQ(result.injected, 2000u);
    EXPECT_EQ(result.memory.requests, 2000u);
    // 64-byte requests split into two 32-byte bursts each.
    EXPECT_EQ(result.readBursts() + result.writeBursts(), 4000u);
}

TEST(Simulate, AggregatesMatchChannelSums)
{
    const auto result = simulateTrace(makeTrace(3000));
    std::uint64_t rd = 0, wr = 0, rh = 0, wh = 0;
    for (const auto &c : result.channels) {
        rd += c.readBursts;
        wr += c.writeBursts;
        rh += c.readRowHits;
        wh += c.writeRowHits;
    }
    EXPECT_EQ(result.readBursts(), rd);
    EXPECT_EQ(result.writeBursts(), wr);
    EXPECT_EQ(result.readRowHits(), rh);
    EXPECT_EQ(result.writeRowHits(), wh);
    EXPECT_LE(rh, rd);
    EXPECT_LE(wh, wr);
}

TEST(Simulate, QueueAveragesWeightedAcrossChannels)
{
    const auto result = simulateTrace(makeTrace(3000));
    // The weighted average must lie within [min, max] channel means.
    double lo = 1e9, hi = -1.0;
    for (const auto &c : result.channels) {
        if (c.readQueueSeen.total() == 0)
            continue;
        lo = std::min(lo, c.readQueueSeen.mean());
        hi = std::max(hi, c.readQueueSeen.mean());
    }
    EXPECT_GE(result.avgReadQueueLength(), lo - 1e-9);
    EXPECT_LE(result.avgReadQueueLength(), hi + 1e-9);
}

TEST(Simulate, LatencyIncludesCrossbarButNotInjectionWait)
{
    // A single request's read latency is pure service time; the
    // crossbar latency happens before admission.
    mem::Trace t;
    t.add(0, 0, 32, mem::Op::Read);
    const auto result = simulateTrace(t);
    const DramConfig c;
    EXPECT_DOUBLE_EQ(result.avgReadLatency(),
                     c.tRCD + c.tCL + c.tBURST);
}

TEST(Simulate, SourceOverloadAcceptsSynthesisEngine)
{
    const mem::Trace trace = makeTrace(1500);
    const core::Profile profile =
        core::buildProfile(trace, core::PartitionConfig::twoLevelTs());
    core::SynthesisEngine engine(profile, 3);
    const auto result = simulateSource(engine);
    EXPECT_EQ(result.injected, trace.size());
}

TEST(Simulate, CustomConfigsRespected)
{
    DramConfig config;
    config.channels = 1;
    config.banksPerRank = 4;
    const auto result = simulateTrace(makeTrace(500), config);
    EXPECT_EQ(result.channels.size(), 1u);
    EXPECT_EQ(result.channels[0].perBankReadBursts.size(), 4u);
}

TEST(Simulate, BackpressureReportedUnderOverload)
{
    // Saturating zero-gap traffic must accumulate injection delay.
    mem::Trace t;
    for (int i = 0; i < 3000; ++i)
        t.add(0, static_cast<mem::Addr>(i) * 128, 128, mem::Op::Read);
    const auto result = simulateTrace(t);
    EXPECT_GT(result.accumulatedDelay, 0u);
    EXPECT_EQ(result.injected, 3000u);
}

} // namespace
