#include "dram/address_map.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

TEST(DramConfig, DefaultIsValidAndMatchesTable3)
{
    DramConfig c;
    EXPECT_TRUE(c.isValid());
    EXPECT_EQ(c.channels, 4u);
    EXPECT_EQ(c.ranksPerChannel, 1u);
    EXPECT_EQ(c.banksPerRank, 8u);
    EXPECT_EQ(c.burstSize, 32u);
    EXPECT_EQ(c.readQueueCapacity, 32u);
    EXPECT_EQ(c.writeQueueCapacity, 64u);
    EXPECT_DOUBLE_EQ(c.writeHighThreshold, 0.85);
    EXPECT_DOUBLE_EQ(c.writeLowThreshold, 0.50);
}

TEST(DramConfig, DerivedQuantities)
{
    DramConfig c;
    EXPECT_EQ(c.banksPerChannel(), 8u);
    EXPECT_EQ(c.columnsPerRow(), 64u);
    EXPECT_EQ(c.writeHighMark(), 54u);
    EXPECT_EQ(c.writeLowMark(), 32u);
}

TEST(DramConfig, RejectsNonPowerOfTwo)
{
    DramConfig c;
    c.channels = 3;
    EXPECT_FALSE(c.isValid());
    c = DramConfig{};
    c.burstSize = 48;
    EXPECT_FALSE(c.isValid());
}

TEST(DramConfig, RejectsInvertedThresholds)
{
    DramConfig c;
    c.writeLowThreshold = 0.9;
    c.writeHighThreshold = 0.5;
    EXPECT_FALSE(c.isValid());
}

TEST(AddressMap, SequentialBurstsSameRowRoRaBaChCo)
{
    DramConfig c; // RoRaBaChCo
    AddressMap map(c);
    // Within one 2 KiB row buffer the channel stays fixed and the
    // column increments.
    const DramCoord first = map.decode(0);
    const DramCoord second = map.decode(32);
    EXPECT_EQ(first.channel, second.channel);
    EXPECT_EQ(first.row, second.row);
    EXPECT_EQ(first.bank, second.bank);
    EXPECT_EQ(second.column, first.column + 1);
}

TEST(AddressMap, ChannelInterleaveAtRowSizeRoRaBaChCo)
{
    DramConfig c;
    AddressMap map(c);
    EXPECT_EQ(map.decode(0).channel, 0u);
    EXPECT_EQ(map.decode(2048).channel, 1u);
    EXPECT_EQ(map.decode(4096).channel, 2u);
    EXPECT_EQ(map.decode(6144).channel, 3u);
    EXPECT_EQ(map.decode(8192).channel, 0u);
    // After wrapping all channels we move to the next bank.
    EXPECT_EQ(map.decode(8192).bank, 1u);
}

TEST(AddressMap, ChannelInterleaveAtBurstRoRaBaCoCh)
{
    DramConfig c;
    c.mapping = AddressMapping::RoRaBaCoCh;
    AddressMap map(c);
    EXPECT_EQ(map.decode(0).channel, 0u);
    EXPECT_EQ(map.decode(32).channel, 1u);
    EXPECT_EQ(map.decode(64).channel, 2u);
    EXPECT_EQ(map.decode(96).channel, 3u);
    EXPECT_EQ(map.decode(128).channel, 0u);
    EXPECT_EQ(map.decode(128).column, 1u);
}

TEST(AddressMap, CoordinatesWithinBounds)
{
    for (const auto mapping :
         {AddressMapping::RoRaBaChCo, AddressMapping::RoRaBaCoCh}) {
        DramConfig c;
        c.mapping = mapping;
        AddressMap map(c);
        util::Rng rng(5);
        for (int i = 0; i < 2000; ++i) {
            const mem::Addr addr = rng.below(1ull << 40);
            const DramCoord coord = map.decode(addr);
            EXPECT_LT(coord.channel, c.channels);
            EXPECT_LT(coord.rank, c.ranksPerChannel);
            EXPECT_LT(coord.bank, c.banksPerRank);
            EXPECT_LT(coord.column, c.columnsPerRow());
        }
    }
}

TEST(AddressMap, EncodeIsInverseOfDecode)
{
    for (const auto mapping :
         {AddressMapping::RoRaBaChCo, AddressMapping::RoRaBaCoCh}) {
        DramConfig c;
        c.mapping = mapping;
        AddressMap map(c);
        util::Rng rng(6);
        for (int i = 0; i < 2000; ++i) {
            const mem::Addr addr =
                rng.below(1ull << 40) & ~mem::Addr{31};
            EXPECT_EQ(map.encode(map.decode(addr)), addr);
        }
    }
}

TEST(AddressMap, DistinctBurstsDistinctCoords)
{
    DramConfig c;
    AddressMap map(c);
    // Two different burst-aligned addresses never map to the same
    // full coordinate.
    const DramCoord a = map.decode(0x12340000);
    const DramCoord b = map.decode(0x12340020);
    EXPECT_FALSE(a == b);
}

TEST(AddressMap, FlatBankIndex)
{
    DramConfig c;
    c.ranksPerChannel = 2;
    AddressMap map(c);
    DramCoord coord;
    coord.rank = 1;
    coord.bank = 3;
    EXPECT_EQ(coord.flatBank(c), 8u + 3u);
}

} // namespace
