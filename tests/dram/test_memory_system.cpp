#include "dram/memory_system.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

struct MemorySystemFixture : public ::testing::Test
{
    sim::EventQueue events;
    DramConfig config;

    static mem::Request
    req(mem::Addr addr, std::uint32_t size, mem::Op op)
    {
        return mem::Request{0, addr, size, op};
    }
};

TEST_F(MemorySystemFixture, SingleBurstRequest)
{
    MemorySystem memory(events, config);
    ASSERT_TRUE(memory.tryInject(req(0x0, 32, mem::Op::Read)));
    events.run();
    EXPECT_EQ(memory.totalReadBursts(), 1u);
    EXPECT_EQ(memory.stats().requests, 1u);
    EXPECT_EQ(memory.stats().readRequests, 1u);
    EXPECT_TRUE(memory.idle());
}

TEST_F(MemorySystemFixture, LargeRequestSplitsIntoBursts)
{
    MemorySystem memory(events, config);
    ASSERT_TRUE(memory.tryInject(req(0x0, 128, mem::Op::Write)));
    events.run();
    EXPECT_EQ(memory.totalWriteBursts(), 4u);
    EXPECT_EQ(memory.stats().writeRequests, 1u);
}

TEST_F(MemorySystemFixture, UnalignedRequestCoversAllBursts)
{
    MemorySystem memory(events, config);
    // 64 bytes starting 16 bytes into a burst touches 3 bursts.
    ASSERT_TRUE(memory.tryInject(req(0x10, 64, mem::Op::Read)));
    events.run();
    EXPECT_EQ(memory.totalReadBursts(), 3u);
}

TEST_F(MemorySystemFixture, SingleByteRequest)
{
    MemorySystem memory(events, config);
    ASSERT_TRUE(memory.tryInject(req(0x7, 1, mem::Op::Read)));
    events.run();
    EXPECT_EQ(memory.totalReadBursts(), 1u);
}

TEST_F(MemorySystemFixture, RoutesToCorrectChannel)
{
    MemorySystem memory(events, config);
    // RoRaBaChCo: channel flips every 2 KiB.
    ASSERT_TRUE(memory.tryInject(req(0, 32, mem::Op::Read)));
    ASSERT_TRUE(memory.tryInject(req(2048, 32, mem::Op::Read)));
    ASSERT_TRUE(memory.tryInject(req(4096, 32, mem::Op::Read)));
    events.run();
    EXPECT_EQ(memory.channelStats(0).readBursts, 1u);
    EXPECT_EQ(memory.channelStats(1).readBursts, 1u);
    EXPECT_EQ(memory.channelStats(2).readBursts, 1u);
    EXPECT_EQ(memory.channelStats(3).readBursts, 0u);
}

TEST_F(MemorySystemFixture, BackpressureWhenQueueFull)
{
    MemorySystem memory(events, config);
    // Fill channel 0's read queue (32 bursts) without running events.
    for (std::uint32_t i = 0; i < config.readQueueCapacity; ++i) {
        ASSERT_TRUE(
            memory.tryInject(req(i * 32, 32, mem::Op::Read)));
    }
    // One burst is in service (popped from the queue), so one more
    // fits; after that the queue must reject. 0x8000 and 0x10000 both
    // map to channel 0 under RoRaBaChCo (2 KiB interleave).
    ASSERT_TRUE(memory.tryInject(req(0x8000, 32, mem::Op::Read)));
    EXPECT_FALSE(memory.tryInject(req(0x10000, 32, mem::Op::Read)));
    EXPECT_GT(memory.stats().backpressureRejects, 0u);
    events.run();
    EXPECT_EQ(memory.totalReadBursts(), config.readQueueCapacity + 1);
}

TEST_F(MemorySystemFixture, AdmissionIsAllOrNothing)
{
    MemorySystem memory(events, config);
    // Leave exactly one free slot in channel 0's read queue, then
    // offer a 2-burst request to that channel: it must be rejected
    // entirely (no partial admission).
    for (std::uint32_t i = 0; i < config.readQueueCapacity + 1; ++i) {
        ASSERT_TRUE(
            memory.tryInject(req(i * 32, 32, mem::Op::Read)));
    }
    // Queue now has 32 entries; capacity reached.
    EXPECT_FALSE(memory.tryInject(req(0x10000, 64, mem::Op::Read)));
    events.run();
    EXPECT_EQ(memory.totalReadBursts(), config.readQueueCapacity + 1);
}

TEST_F(MemorySystemFixture, ReadLatencyRecorded)
{
    MemorySystem memory(events, config);
    ASSERT_TRUE(memory.tryInject(req(0, 32, mem::Op::Read)));
    events.run();
    ASSERT_EQ(memory.stats().readLatency.count(), 1u);
    EXPECT_DOUBLE_EQ(memory.stats().readLatency.mean(),
                     config.tRCD + config.tCL + config.tBURST);
}

TEST_F(MemorySystemFixture, WriteLatencyNotRecordedAsRead)
{
    MemorySystem memory(events, config);
    ASSERT_TRUE(memory.tryInject(req(0, 32, mem::Op::Write)));
    events.run();
    EXPECT_EQ(memory.stats().readLatency.count(), 0u);
}

TEST_F(MemorySystemFixture, MultiBurstLatencyIsLastCompletion)
{
    MemorySystem memory(events, config);
    ASSERT_TRUE(memory.tryInject(req(0, 64, mem::Op::Read)));
    events.run();
    ASSERT_EQ(memory.stats().readLatency.count(), 1u);
    // Two bursts to the same row: second is a row hit after the first
    // frees the bus.
    const double expected = (config.tRCD + config.tBURST) +
                            config.tCL + config.tBURST;
    EXPECT_DOUBLE_EQ(memory.stats().readLatency.mean(), expected);
}

TEST_F(MemorySystemFixture, SequentialStreamGetsRowHits)
{
    MemorySystem memory(events, config);
    // 24 sequential bursts within one row (fits the 32-entry queue).
    for (std::uint32_t i = 0; i < 24; ++i)
        ASSERT_TRUE(memory.tryInject(req(i * 32, 32, mem::Op::Read)));
    events.run();
    EXPECT_EQ(memory.totalReadBursts(), 24u);
    EXPECT_EQ(memory.totalReadRowHits(), 23u);
}

TEST_F(MemorySystemFixture, AggregatesMatchChannelSums)
{
    MemorySystem memory(events, config);
    for (std::uint32_t i = 0; i < 40; ++i) {
        ASSERT_TRUE(memory.tryInject(
            req(i * 512, 64, i % 2 ? mem::Op::Write : mem::Op::Read)));
    }
    events.run();
    std::uint64_t rd = 0, wr = 0, rh = 0, wh = 0;
    for (std::uint32_t c = 0; c < memory.channelCount(); ++c) {
        rd += memory.channelStats(c).readBursts;
        wr += memory.channelStats(c).writeBursts;
        rh += memory.channelStats(c).readRowHits;
        wh += memory.channelStats(c).writeRowHits;
    }
    EXPECT_EQ(memory.totalReadBursts(), rd);
    EXPECT_EQ(memory.totalWriteBursts(), wr);
    EXPECT_EQ(memory.totalReadRowHits(), rh);
    EXPECT_EQ(memory.totalWriteRowHits(), wh);
    EXPECT_EQ(rd + wr, 40u * 2);
}

TEST_F(MemorySystemFixture, QueueLengthAveragesAreFinite)
{
    MemorySystem memory(events, config);
    for (std::uint32_t i = 0; i < 20; ++i)
        ASSERT_TRUE(memory.tryInject(req(i * 32, 32, mem::Op::Read)));
    events.run();
    EXPECT_GE(memory.avgReadQueueLength(), 0.0);
    EXPECT_LT(memory.avgReadQueueLength(),
              static_cast<double>(config.readQueueCapacity));
}

} // namespace
