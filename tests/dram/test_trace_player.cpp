#include "dram/trace_player.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dram/memory_system.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

TEST(TracePlayer, HonoursTimestamps)
{
    sim::EventQueue events;
    mem::Trace trace;
    trace.add(10, 0x100, 32, mem::Op::Read);
    trace.add(50, 0x200, 32, mem::Op::Read);
    mem::TraceSource source(trace);

    std::vector<sim::Tick> injected_at;
    TracePlayer player(events, source, [&](const mem::Request &) {
        injected_at.push_back(events.now());
        return true;
    });
    player.start();
    events.run();

    EXPECT_EQ(injected_at, (std::vector<sim::Tick>{10, 50}));
    EXPECT_TRUE(player.done());
    EXPECT_EQ(player.injected(), 2u);
    EXPECT_EQ(player.accumulatedDelay(), 0u);
    EXPECT_EQ(player.finishTick(), 50u);
}

TEST(TracePlayer, EmptySourceFinishesImmediately)
{
    sim::EventQueue events;
    mem::Trace trace;
    mem::TraceSource source(trace);
    TracePlayer player(events, source,
                       [](const mem::Request &) { return true; });
    player.start();
    EXPECT_TRUE(player.done());
    EXPECT_EQ(player.injected(), 0u);
}

TEST(TracePlayer, BackpressureDelaysLaterRequests)
{
    sim::EventQueue events;
    mem::Trace trace;
    trace.add(0, 0x100, 32, mem::Op::Read);
    trace.add(100, 0x200, 32, mem::Op::Read);
    mem::TraceSource source(trace);

    int rejections = 5;
    std::vector<sim::Tick> injected_at;
    TracePlayer player(
        events, source,
        [&](const mem::Request &) {
            if (rejections > 0) {
                --rejections;
                return false;
            }
            injected_at.push_back(events.now());
            return true;
        },
        2);
    player.start();
    events.run();

    // First request retried 5 times at 2-cycle intervals -> 10 cycles
    // of accumulated delay shift the second request to 110.
    ASSERT_EQ(injected_at.size(), 2u);
    EXPECT_EQ(injected_at[0], 10u);
    EXPECT_EQ(injected_at[1], 110u);
    EXPECT_EQ(player.accumulatedDelay(), 10u);
}

TEST(TracePlayer, CatchesUpWhenBehind)
{
    sim::EventQueue events;
    // Second request is timestamped earlier than the first finishes
    // being delayed; it should inject as soon as possible, not in the
    // past.
    mem::Trace trace;
    trace.add(0, 0x100, 32, mem::Op::Read);
    trace.add(1, 0x200, 32, mem::Op::Read);
    mem::TraceSource source(trace);

    int rejections = 10;
    std::vector<sim::Tick> injected_at;
    TracePlayer player(events, source, [&](const mem::Request &) {
        if (rejections > 0) {
            --rejections;
            return false;
        }
        injected_at.push_back(events.now());
        return true;
    });
    player.start();
    events.run();
    ASSERT_EQ(injected_at.size(), 2u);
    EXPECT_EQ(injected_at[0], 10u);
    EXPECT_EQ(injected_at[1], 11u); // 1 + 10 delay
}

TEST(TracePlayer, DrivesMemorySystemEndToEnd)
{
    sim::EventQueue events;
    DramConfig config;
    MemorySystem memory(events, config);

    mem::Trace trace;
    for (int i = 0; i < 200; ++i) {
        trace.add(static_cast<mem::Tick>(i * 2),
                  static_cast<mem::Addr>(i) * 64, 64,
                  i % 4 == 0 ? mem::Op::Write : mem::Op::Read);
    }
    mem::TraceSource source(trace);
    TracePlayer player(events, source, [&](const mem::Request &r) {
        return memory.tryInject(r);
    });
    player.start();
    events.run();

    EXPECT_TRUE(player.done());
    EXPECT_EQ(player.injected(), 200u);
    EXPECT_EQ(memory.stats().requests, 200u);
    EXPECT_EQ(memory.totalReadBursts() + memory.totalWriteBursts(),
              400u);
    EXPECT_TRUE(memory.idle());
}

TEST(TracePlayer, ConservationUnderHeavyBackpressure)
{
    sim::EventQueue events;
    DramConfig config;
    config.readQueueCapacity = 4;
    config.writeQueueCapacity = 4;
    MemorySystem memory(events, config);

    mem::Trace trace;
    for (int i = 0; i < 500; ++i) {
        // Everything at tick 0: maximum contention.
        trace.add(0, static_cast<mem::Addr>(i) * 128, 128,
                  i % 2 ? mem::Op::Write : mem::Op::Read);
    }
    mem::TraceSource source(trace);
    TracePlayer player(events, source, [&](const mem::Request &r) {
        return memory.tryInject(r);
    });
    player.start();
    events.run();

    EXPECT_EQ(player.injected(), 500u);
    EXPECT_EQ(memory.totalReadBursts() + memory.totalWriteBursts(),
              2000u);
    EXPECT_GT(player.accumulatedDelay(), 0u);
    EXPECT_TRUE(memory.idle());
}

} // namespace
