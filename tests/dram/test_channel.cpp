#include "dram/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace
{

using namespace mocktails;
using namespace mocktails::dram;

struct ChannelFixture : public ::testing::Test
{
    sim::EventQueue events;
    DramConfig config;
    std::vector<std::pair<Burst, sim::Tick>> completions;

    std::unique_ptr<Channel>
    makeChannel()
    {
        return std::make_unique<Channel>(
            events, config, [this](const Burst &b, sim::Tick t) {
                completions.emplace_back(b, t);
            });
    }

    static Burst
    burst(std::uint64_t row, std::uint32_t bank, bool is_read,
          std::uint64_t id = 0)
    {
        Burst b;
        b.row = row;
        b.bank = bank;
        b.isRead = is_read;
        b.requestId = id;
        return b;
    }
};

TEST_F(ChannelFixture, SingleReadCompletes)
{
    auto channel = makeChannel();
    channel->push(burst(1, 0, true));
    events.run();
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_TRUE(channel->idle());
    EXPECT_EQ(channel->stats().readBursts, 1u);
    // Closed bank: tRCD + tCL + tBURST.
    EXPECT_EQ(completions[0].second,
              config.tRCD + config.tCL + config.tBURST);
}

TEST_F(ChannelFixture, FirstAccessIsNeverRowHit)
{
    auto channel = makeChannel();
    channel->push(burst(1, 0, true));
    events.run();
    EXPECT_EQ(channel->stats().readRowHits, 0u);
}

TEST_F(ChannelFixture, SecondAccessSameRowHits)
{
    auto channel = makeChannel();
    channel->push(burst(1, 0, true));
    channel->push(burst(1, 0, true));
    events.run();
    EXPECT_EQ(channel->stats().readBursts, 2u);
    EXPECT_EQ(channel->stats().readRowHits, 1u);
}

TEST_F(ChannelFixture, ConflictingRowsDoNotHit)
{
    // FCFS keeps the conflicting order; every access misses (and the
    // adaptive policy precharges ahead of each visible conflict).
    config.scheduling = Scheduling::Fcfs;
    auto channel = makeChannel();
    channel->push(burst(1, 0, true));
    channel->push(burst(2, 0, true));
    channel->push(burst(1, 0, true));
    events.run();
    EXPECT_EQ(channel->stats().readBursts, 3u);
    EXPECT_EQ(channel->stats().readRowHits, 0u);
}

TEST_F(ChannelFixture, FrFcfsReordersConflictIntoHit)
{
    // The same three bursts under FR-FCFS: the queued row-1 burst is
    // serviced while row 1 is still open, yielding one hit.
    auto channel = makeChannel();
    channel->push(burst(1, 0, true));
    channel->push(burst(2, 0, true));
    channel->push(burst(1, 0, true));
    events.run();
    EXPECT_EQ(channel->stats().readBursts, 3u);
    EXPECT_EQ(channel->stats().readRowHits, 1u);
}

TEST_F(ChannelFixture, FrFcfsPrefersRowHitOverOlder)
{
    auto channel = makeChannel();
    // The first burst opens row 1 and keeps the bus busy while the
    // older row-2 and younger row-1 bursts queue behind it.
    channel->push(burst(1, 0, true, 100));
    channel->push(burst(2, 0, true, 1));
    channel->push(burst(1, 0, true, 2));
    events.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0].first.requestId, 100u);
    EXPECT_EQ(completions[1].first.requestId, 2u); // hit first
    EXPECT_EQ(completions[2].first.requestId, 1u);
    EXPECT_EQ(channel->stats().readRowHits, 1u);
}

TEST_F(ChannelFixture, FcfsIgnoresRowHits)
{
    config.scheduling = Scheduling::Fcfs;
    auto channel = makeChannel();
    channel->push(burst(1, 0, true, 100));
    channel->push(burst(2, 0, true, 1));
    channel->push(burst(1, 0, true, 2));
    events.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[1].first.requestId, 1u); // strictly oldest
    EXPECT_EQ(channel->stats().readRowHits, 0u);
}

TEST_F(ChannelFixture, ClosedPagePolicyNeverHits)
{
    config.pagePolicy = PagePolicy::Closed;
    auto channel = makeChannel();
    for (int i = 0; i < 5; ++i)
        channel->push(burst(1, 0, true));
    events.run();
    EXPECT_EQ(channel->stats().readRowHits, 0u);
}

TEST_F(ChannelFixture, OpenAdaptivePrechargesOnPendingConflict)
{
    auto channel = makeChannel();
    // id0 opens row 1; while it occupies the bus, a row-1 hit (id1)
    // and a row-2 conflict (id2) queue up. After servicing id1 the
    // adaptive policy sees only the pending conflict and precharges,
    // so id2 pays tRCD (closed) rather than tRP + tRCD (conflict).
    channel->push(burst(1, 0, true, 0));
    channel->push(burst(1, 0, true, 1));
    channel->push(burst(2, 0, true, 2));
    events.run();
    ASSERT_EQ(completions.size(), 3u);
    const sim::Tick id0_busfree = config.tRCD + config.tBURST;
    const sim::Tick id1_busfree = id0_busfree + config.tBURST;
    EXPECT_EQ(completions[2].second,
              id1_busfree + config.tRCD + config.tCL + config.tBURST);
}

TEST_F(ChannelFixture, PlainOpenPolicyPaysConflict)
{
    config.pagePolicy = PagePolicy::Open;
    auto channel = makeChannel();
    channel->push(burst(1, 0, true, 0));
    channel->push(burst(1, 0, true, 1));
    channel->push(burst(2, 0, true, 2));
    events.run();
    ASSERT_EQ(completions.size(), 3u);
    const sim::Tick id0_busfree = config.tRCD + config.tBURST;
    const sim::Tick id1_busfree = id0_busfree + config.tBURST;
    EXPECT_EQ(completions[2].second,
              id1_busfree + config.tRP + config.tRCD + config.tCL +
                  config.tBURST);
}

TEST_F(ChannelFixture, WritesDrainWhenIdle)
{
    auto channel = makeChannel();
    channel->push(burst(1, 0, false));
    events.run();
    EXPECT_EQ(channel->stats().writeBursts, 1u);
    EXPECT_TRUE(channel->idle());
}

TEST_F(ChannelFixture, ReadsPrioritizedOverWritesBelowThreshold)
{
    auto channel = makeChannel();
    // Stage both kinds while the channel is busy with a first burst.
    channel->push(burst(1, 0, true, 1));
    channel->push(burst(3, 1, false, 2));
    channel->push(burst(4, 2, true, 3));
    events.run();
    ASSERT_EQ(completions.size(), 3u);
    // The write is serviced last even though it is older than read 3.
    EXPECT_EQ(completions[2].first.requestId, 2u);
}

TEST_F(ChannelFixture, HighWatermarkTriggersDrain)
{
    auto channel = makeChannel();
    // Keep the channel permanently supplied with reads, and fill the
    // write queue past the high watermark; writes must eventually be
    // serviced before the reads run out.
    for (std::uint32_t i = 0; i < config.writeHighMark() + 1; ++i)
        channel->push(burst(100 + i, i % 8, false, 1000 + i));
    for (int i = 0; i < 8; ++i)
        channel->push(burst(i, i % 8, true, i));
    events.run();
    EXPECT_EQ(channel->stats().writeBursts, config.writeHighMark() + 1);
    EXPECT_GE(channel->stats().turnarounds, 1u);
}

TEST_F(ChannelFixture, ReadsPerTurnaroundRecorded)
{
    auto channel = makeChannel();
    // 3 reads, then idle-drain a write: the switch records 3 reads.
    channel->push(burst(1, 0, true));
    channel->push(burst(1, 0, true));
    channel->push(burst(1, 0, true));
    events.run();
    channel->push(burst(2, 1, false));
    events.run();
    ASSERT_EQ(channel->stats().readsPerTurnaround.count(), 1u);
    EXPECT_DOUBLE_EQ(channel->stats().readsPerTurnaround.mean(), 3.0);
}

TEST_F(ChannelFixture, MinWritesHysteresisKeepsDraining)
{
    // Enter the drain via the high watermark with reads waiting: the
    // drain must service at least minWritesPerSwitch writes before
    // returning to reads, even once below the low watermark.
    config.writeQueueCapacity = 8;
    config.writeHighThreshold = 0.5; // high mark = 4
    config.writeLowThreshold = 0.25; // low mark = 2
    config.minWritesPerSwitch = 4;
    auto channel = makeChannel();

    // Busy the channel with a read, then queue 4 writes (hits the
    // high mark) and one more read.
    channel->push(burst(1, 0, true, 0));
    for (std::uint32_t i = 0; i < 4; ++i)
        channel->push(burst(10 + i, i % 8, false, 100 + i));
    channel->push(burst(2, 1, true, 1));
    events.run();

    // Completion order: read 0, then all 4 writes (hysteresis), then
    // read 1.
    ASSERT_EQ(completions.size(), 6u);
    EXPECT_EQ(completions[0].first.requestId, 0u);
    for (std::size_t i = 1; i <= 4; ++i)
        EXPECT_FALSE(completions[i].first.isRead) << i;
    EXPECT_EQ(completions[5].first.requestId, 1u);
}

TEST_F(ChannelFixture, DrainExitsEarlyWhenQueueEmpties)
{
    // Fewer writes than minWritesPerSwitch: the drain ends when the
    // queue empties rather than stalling.
    config.minWritesPerSwitch = 16;
    auto channel = makeChannel();
    channel->push(burst(1, 0, false));
    channel->push(burst(2, 1, false));
    events.run();
    EXPECT_EQ(channel->stats().writeBursts, 2u);
    EXPECT_TRUE(channel->idle());
}

TEST_F(ChannelFixture, QueueSeenSampledOnArrival)
{
    auto channel = makeChannel();
    channel->push(burst(1, 0, true));
    channel->push(burst(2, 1, true));
    channel->push(burst(3, 2, true));
    events.run();
    const auto &h = channel->stats().readQueueSeen;
    EXPECT_EQ(h.total(), 3u);
    // The first arrival saw an empty queue and went straight into
    // service, so the second arrival saw an empty queue too; only the
    // third saw one queued burst.
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
}

TEST_F(ChannelFixture, PerBankCountsSumToBursts)
{
    auto channel = makeChannel();
    for (std::uint32_t i = 0; i < 20; ++i)
        channel->push(burst(i, i % 8, i % 3 != 0));
    events.run();
    std::uint64_t reads = 0, writes = 0;
    for (std::uint32_t b = 0; b < config.banksPerChannel(); ++b) {
        reads += channel->stats().perBankReadBursts[b];
        writes += channel->stats().perBankWriteBursts[b];
    }
    EXPECT_EQ(reads, channel->stats().readBursts);
    EXPECT_EQ(writes, channel->stats().writeBursts);
}

TEST_F(ChannelFixture, RefreshChargedWhenIntervalElapses)
{
    auto channel = makeChannel();
    // First access at t=0: the interval has not elapsed.
    channel->push(burst(1, 0, true, 0));
    events.run();
    EXPECT_EQ(channel->stats().refreshes, 0u);

    // A burst arriving after tREFI pays one refresh first, and the
    // refresh closes the previously open row (no row hit).
    events.runUntil(config.tREFI + 10);
    channel->push(burst(1, 0, true, 1));
    events.run();
    EXPECT_EQ(channel->stats().refreshes, 1u);
    EXPECT_EQ(channel->stats().readRowHits, 0u);
}

TEST_F(ChannelFixture, RefreshDelaysTheNextBurst)
{
    auto channel = makeChannel();
    events.runUntil(config.tREFI + 1);
    const sim::Tick start = events.now();
    channel->push(burst(1, 0, true, 0));
    events.run();
    ASSERT_EQ(completions.size(), 1u);
    // tRFC (refresh) + tRCD + tCL + tBURST after the arrival.
    EXPECT_EQ(completions[0].second,
              start + config.tRFC + config.tRCD + config.tCL +
                  config.tBURST);
}

TEST_F(ChannelFixture, RefreshDisabledWithZeroInterval)
{
    config.tREFI = 0;
    auto channel = makeChannel();
    events.runUntil(100000);
    channel->push(burst(1, 0, true, 0));
    events.run();
    EXPECT_EQ(channel->stats().refreshes, 0u);
}

TEST_F(ChannelFixture, UtilizationTracksOccupancy)
{
    auto channel = makeChannel();
    // One burst: busy for prep + tBURST, active window ends at the
    // data completion.
    channel->push(burst(1, 0, true));
    events.run();
    const auto &stats = channel->stats();
    EXPECT_EQ(stats.busyCycles, config.tRCD + config.tBURST);
    EXPECT_EQ(stats.lastActiveTick,
              config.tRCD + config.tCL + config.tBURST);
    EXPECT_GT(stats.utilization(), 0.0);
    EXPECT_LE(stats.utilization(), 1.0);
}

TEST_F(ChannelFixture, BackToBackHitsKeepBusNearlyBusy)
{
    auto channel = makeChannel();
    for (int i = 0; i < 16; ++i)
        channel->push(burst(1, 0, true));
    events.run();
    // After the first activate, hits stream at tBURST each.
    const auto &stats = channel->stats();
    EXPECT_EQ(stats.busyCycles,
              config.tRCD + 16u * config.tBURST);
}

TEST_F(ChannelFixture, CapacityChecks)
{
    auto channel = makeChannel();
    EXPECT_TRUE(channel->canAcceptRead());
    EXPECT_TRUE(channel->canAcceptWrite());
}

TEST_F(ChannelFixture, WriteToReadTurnaroundPenalty)
{
    auto channel = makeChannel();
    channel->push(burst(1, 0, false, 1));
    events.run();
    const sim::Tick write_done = completions[0].second;
    completions.clear();
    // A read right after a write pays tWTR; same row so no prep.
    channel->push(burst(1, 0, true, 2));
    events.run();
    const sim::Tick expected_start =
        write_done - config.tCWL; // bus became free before data done
    (void)expected_start;
    // The read completion includes the tWTR turnaround.
    EXPECT_GE(completions[0].second,
              config.tWTR + config.tCL + config.tBURST);
}

} // namespace
