#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace mocktails;
using namespace mocktails::cache;

TEST(Hierarchy, DefaultConfigMatchesSec5Platform)
{
    HierarchyConfig config;
    EXPECT_EQ(config.l2.size, 256u * 1024);
    EXPECT_EQ(config.l2.associativity, 8u);
    EXPECT_EQ(config.l1.blockSize, 64u);
}

TEST(Hierarchy, L1MissGoesToL2)
{
    Hierarchy h{HierarchyConfig{}};
    h.access(mem::Request{0, 0x1000, 8, mem::Op::Read});
    EXPECT_EQ(h.l1Stats().misses, 1u);
    EXPECT_EQ(h.l2Stats().accesses, 1u);

    h.access(mem::Request{1, 0x1000, 8, mem::Op::Read});
    EXPECT_EQ(h.l1Stats().accesses, 2u);
    EXPECT_EQ(h.l2Stats().accesses, 1u); // L1 hit shields L2
}

TEST(Hierarchy, FootprintCountsUniqueBlocks)
{
    Hierarchy h{HierarchyConfig{}};
    h.access(mem::Request{0, 0x0, 8, mem::Op::Read});
    h.access(mem::Request{1, 0x8, 8, mem::Op::Read});  // same block
    h.access(mem::Request{2, 0x40, 8, mem::Op::Read}); // new block
    EXPECT_EQ(h.footprintBlocks(), 2u);
    EXPECT_EQ(h.footprintBytes(), 128u);
}

TEST(Hierarchy, FootprintCountsSpannedBlocks)
{
    Hierarchy h{HierarchyConfig{}};
    h.access(mem::Request{0, 0x3c, 8, mem::Op::Read}); // spans 2 blocks
    EXPECT_EQ(h.footprintBlocks(), 2u);
}

TEST(Hierarchy, RunProcessesWholeTrace)
{
    Hierarchy h{HierarchyConfig{}};
    mem::Trace trace;
    for (int i = 0; i < 1000; ++i)
        trace.add(static_cast<mem::Tick>(i),
                  static_cast<mem::Addr>(i % 50) * 64, 8, mem::Op::Read);
    h.run(trace);
    EXPECT_EQ(h.l1Stats().accesses, 1000u);
    EXPECT_EQ(h.l1Stats().misses, 50u);
    EXPECT_EQ(h.footprintBlocks(), 50u);
}

TEST(Hierarchy, ResetClearsState)
{
    Hierarchy h{HierarchyConfig{}};
    h.access(mem::Request{0, 0x1000, 8, mem::Op::Write});
    h.reset();
    EXPECT_EQ(h.l1Stats().accesses, 0u);
    EXPECT_EQ(h.l2Stats().accesses, 0u);
    EXPECT_EQ(h.footprintBlocks(), 0u);
}

TEST(Hierarchy, DirtyL1VictimWritesIntoL2)
{
    HierarchyConfig config;
    config.l1 = CacheConfig{1024, 2, 64};
    Hierarchy h(config);
    // Fill set 0 (8 sets in this L1) with a dirty block and two more.
    h.access(mem::Request{0, 0, 8, mem::Op::Write});
    h.access(mem::Request{1, 512, 8, mem::Op::Read});
    h.access(mem::Request{2, 1024, 8, mem::Op::Read});
    EXPECT_EQ(h.l1Stats().writebacks, 1u);
    EXPECT_EQ(h.l2Stats().writeAccesses, 1u);
}

TEST(Hierarchy, WorkingSetLargerThanL1FitsInL2)
{
    HierarchyConfig config;
    config.l1 = CacheConfig{16 * 1024, 2, 64};
    Hierarchy h(config);
    // 64 KiB working set: misses L1 when cycled, hits L2.
    const int blocks = (64 * 1024) / 64;
    for (int round = 0; round < 3; ++round) {
        for (int b = 0; b < blocks; ++b) {
            h.access(mem::Request{0, static_cast<mem::Addr>(b) * 64, 8,
                                  mem::Op::Read});
        }
    }
    // After the cold round, L2 should hit almost always.
    EXPECT_GT(h.l2Stats().accesses, static_cast<std::uint64_t>(blocks));
    const double l2_miss =
        static_cast<double>(h.l2Stats().misses) /
        static_cast<double>(h.l2Stats().accesses);
    EXPECT_LT(l2_miss, 0.5);
    EXPECT_EQ(h.l2Stats().misses, static_cast<std::uint64_t>(blocks));
}

} // namespace
