#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace mocktails;
using namespace mocktails::cache;

mem::Request
req(mem::Addr addr, std::uint32_t size, mem::Op op)
{
    return mem::Request{0, addr, size, op};
}

TEST(CacheConfig, Validity)
{
    EXPECT_TRUE((CacheConfig{32768, 4, 64}.isValid()));
    EXPECT_FALSE((CacheConfig{32768, 4, 48}.isValid())); // block !pow2
    EXPECT_FALSE((CacheConfig{100, 3, 64}.isValid()));
    EXPECT_EQ((CacheConfig{32768, 4, 64}.numSets()), 128u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache({1024, 2, 64});
    cache.accessBlock(0x1000, mem::Op::Read);
    EXPECT_EQ(cache.stats().misses, 1u);
    cache.accessBlock(0x1000, mem::Op::Read);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SameBlockDifferentByteHits)
{
    Cache cache({1024, 2, 64});
    cache.accessBlock(0x1000, mem::Op::Read);
    cache.accessBlock(0x103f, mem::Op::Read);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, ReadWriteCountsSplit)
{
    Cache cache({1024, 2, 64});
    cache.accessBlock(0x0, mem::Op::Read);
    cache.accessBlock(0x40, mem::Op::Write);
    cache.accessBlock(0x40, mem::Op::Write);
    EXPECT_EQ(cache.stats().readAccesses, 1u);
    EXPECT_EQ(cache.stats().writeAccesses, 2u);
    EXPECT_EQ(cache.stats().readMisses, 1u);
    EXPECT_EQ(cache.stats().writeMisses, 1u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 1 set of interest: blocks mapping to set 0 are multiples
    // of 64 * numSets. 1KB 2-way 64B -> 8 sets.
    Cache cache({1024, 2, 64});
    const mem::Addr a = 0 * 512, b = 1 * 512 + 0, c = 2 * 512;
    // a, b fill set 0; touching a makes b the LRU; c evicts b.
    cache.accessBlock(a, mem::Op::Read);
    cache.accessBlock(b, mem::Op::Read);
    cache.accessBlock(a, mem::Op::Read);
    cache.accessBlock(c, mem::Op::Read);
    EXPECT_EQ(cache.stats().replacements, 1u);
    cache.accessBlock(a, mem::Op::Read); // still resident
    EXPECT_EQ(cache.stats().misses, 3u);
    cache.accessBlock(b, mem::Op::Read); // was evicted
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache cache({1024, 2, 64});
    cache.accessBlock(0, mem::Op::Read);
    cache.accessBlock(512, mem::Op::Read);
    cache.accessBlock(1024, mem::Op::Read); // evicts clean block
    EXPECT_EQ(cache.stats().replacements, 1u);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, DirtyEvictionWritesBack)
{
    Cache cache({1024, 2, 64});
    cache.accessBlock(0, mem::Op::Write);
    cache.accessBlock(512, mem::Op::Read);
    cache.accessBlock(1024, mem::Op::Read); // evicts dirty block 0
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache cache({1024, 2, 64});
    cache.accessBlock(0, mem::Op::Read);  // clean fill
    cache.accessBlock(0, mem::Op::Write); // dirty on hit
    cache.accessBlock(512, mem::Op::Read);
    cache.accessBlock(1024, mem::Op::Read); // evict block 0
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WritebackReachesNextLevel)
{
    Cache l2({4096, 4, 64});
    Cache l1({1024, 2, 64});
    l1.setNextLevel(&l2);

    l1.accessBlock(0, mem::Op::Write);
    l1.accessBlock(512, mem::Op::Read);
    l1.accessBlock(1024, mem::Op::Read);
    // L2 sees: 3 fills (reads) + 1 writeback (write).
    EXPECT_EQ(l2.stats().readAccesses, 3u);
    EXPECT_EQ(l2.stats().writeAccesses, 1u);
}

TEST(Cache, MissFillsFromNextLevel)
{
    Cache l2({4096, 4, 64});
    Cache l1({1024, 2, 64});
    l1.setNextLevel(&l2);
    l1.accessBlock(0x40, mem::Op::Read);
    EXPECT_EQ(l2.stats().accesses, 1u);
    // L1 hit does not touch L2.
    l1.accessBlock(0x40, mem::Op::Read);
    EXPECT_EQ(l2.stats().accesses, 1u);
}

TEST(Cache, RequestSpanningBlocksProbesEach)
{
    Cache cache({1024, 2, 64});
    cache.access(req(0x20, 128, mem::Op::Read)); // blocks 0,1,2
    EXPECT_EQ(cache.stats().accesses, 3u);
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(Cache, AlignedRequestSingleProbe)
{
    Cache cache({1024, 2, 64});
    cache.access(req(0x40, 64, mem::Op::Read));
    EXPECT_EQ(cache.stats().accesses, 1u);
}

TEST(Cache, ResetClearsEverything)
{
    Cache cache({1024, 2, 64});
    cache.accessBlock(0, mem::Op::Write);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    cache.accessBlock(0, mem::Op::Read);
    EXPECT_EQ(cache.stats().misses, 1u); // content was invalidated
}

TEST(Cache, MissRate)
{
    Cache cache({1024, 2, 64});
    cache.accessBlock(0, mem::Op::Read);
    cache.accessBlock(0, mem::Op::Read);
    cache.accessBlock(0, mem::Op::Read);
    cache.accessBlock(0, mem::Op::Read);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.25);
}

TEST(Cache, FullyAssociativeBehaviour)
{
    // size/assoc/block: one set.
    Cache cache({512, 8, 64});
    for (mem::Addr a = 0; a < 8; ++a)
        cache.accessBlock(a * 4096, mem::Op::Read);
    // All 8 blocks resident despite mapping to one set.
    for (mem::Addr a = 0; a < 8; ++a)
        cache.accessBlock(a * 4096, mem::Op::Read);
    EXPECT_EQ(cache.stats().misses, 8u);
}

TEST(Cache, FifoIgnoresRecency)
{
    // 2-way set: fill a then b; touch a (recent); insert c.
    // LRU evicts b, FIFO evicts a (oldest fill).
    CacheConfig config{1024, 2, 64, Replacement::Fifo};
    Cache cache(config);
    cache.accessBlock(0, mem::Op::Read);    // fill a
    cache.accessBlock(512, mem::Op::Read);  // fill b
    cache.accessBlock(0, mem::Op::Read);    // touch a
    cache.accessBlock(1024, mem::Op::Read); // evicts a under FIFO
    cache.accessBlock(512, mem::Op::Read);  // b still resident
    EXPECT_EQ(cache.stats().misses, 3u);
    cache.accessBlock(0, mem::Op::Read); // a was evicted
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(Cache, RandomReplacementIsDeterministic)
{
    const auto run = [] {
        CacheConfig config{1024, 2, 64, Replacement::Random};
        Cache cache(config);
        for (mem::Addr i = 0; i < 200; ++i)
            cache.accessBlock((i % 5) * 512, mem::Op::Read);
        return cache.stats().misses;
    };
    EXPECT_EQ(run(), run());
}

TEST(Cache, RandomReplacementStillCaches)
{
    CacheConfig config{1024, 2, 64, Replacement::Random};
    Cache cache(config);
    for (int round = 0; round < 50; ++round)
        cache.accessBlock(0x40, mem::Op::Read);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, PoliciesDivergeOnThrashPattern)
{
    // Cyclic sweep over assoc+1 conflicting blocks: LRU misses every
    // access after warmup; random replacement keeps some.
    const auto run = [](Replacement policy) {
        CacheConfig config{4096, 4, 64, policy};
        Cache cache(config);
        for (int round = 0; round < 100; ++round) {
            for (mem::Addr i = 0; i < 5; ++i)
                cache.accessBlock(i * 4096, mem::Op::Read);
        }
        return cache.stats().misses;
    };
    const auto lru = run(Replacement::Lru);
    const auto random = run(Replacement::Random);
    EXPECT_EQ(lru, 500u); // LRU pathological: every access misses
    EXPECT_LT(random, lru);
}

TEST(Cache, HigherAssociativityReducesConflicts)
{
    // Access 4 blocks that conflict in a direct-mapped cache.
    auto run = [](std::uint32_t assoc) {
        Cache cache({4096, assoc, 64});
        for (int round = 0; round < 10; ++round) {
            for (mem::Addr i = 0; i < 4; ++i)
                cache.accessBlock(i * 4096, mem::Op::Read);
        }
        return cache.stats().misses;
    };
    EXPECT_GT(run(1), run(4));
    EXPECT_EQ(run(4), 4u); // all fit with assoc 4
}

} // namespace
