#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/flat_map.hpp"

namespace
{

using namespace mocktails::util;

TEST(Arena, AllocationsAreAlignedAndDisjoint)
{
    Arena arena(256);
    auto *a = arena.allocate<std::uint64_t>(4);
    auto *b = arena.allocate<std::uint32_t>(3);
    auto *c = arena.allocate<std::uint64_t>(2);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::uint64_t),
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint64_t),
              0u);
    // Write through every pointer; ASan/UBSan catch overlap or OOB.
    for (int i = 0; i < 4; ++i)
        a[i] = 0x1111111111111111ull * static_cast<unsigned>(i + 1);
    for (int i = 0; i < 3; ++i)
        b[i] = 0x22222222u;
    for (int i = 0; i < 2; ++i)
        c[i] = 0x3333333333333333ull;
    EXPECT_EQ(a[3], 0x4444444444444444ull);
    EXPECT_EQ(b[0], 0x22222222u);
    EXPECT_EQ(c[1], 0x3333333333333333ull);
}

TEST(Arena, OversizedAllocationGetsOwnChunk)
{
    Arena arena(64);
    auto *big = arena.allocate<std::uint8_t>(1000);
    ASSERT_NE(big, nullptr);
    std::memset(big, 0xab, 1000);
    EXPECT_EQ(big[999], 0xab);
    EXPECT_GE(arena.bytesReserved(), 1000u);
}

TEST(Arena, ReserveKeepsAllocationContiguous)
{
    Arena arena(64);
    arena.reserve(4096);
    auto *p = arena.allocate<std::uint8_t>(4096);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5a, 4096);
    EXPECT_EQ(p[4095], 0x5a);
}

TEST(Arena, MoveTransfersOwnership)
{
    Arena arena(128);
    auto *p = arena.allocate<std::uint64_t>(8);
    p[7] = 42;
    Arena moved(std::move(arena));
    EXPECT_EQ(p[7], 42u); // storage survives the move
    auto *q = moved.allocate<std::uint64_t>(1);
    *q = 7;
    EXPECT_EQ(*q, 7u);
}

TEST(ArenaFlatMap, InsertAndFind)
{
    FlatMap64 map;
    EXPECT_EQ(map.find(123), FlatMap64::kNotFound);
    EXPECT_TRUE(map.insert(123, 0));
    EXPECT_FALSE(map.insert(123, 99)); // duplicate keeps first value
    EXPECT_EQ(map.find(123), 0u);
    EXPECT_EQ(map.find(-123), FlatMap64::kNotFound);
}

TEST(ArenaFlatMap, HandlesGrowthAndNegativeKeys)
{
    FlatMap64 map;
    std::vector<std::int64_t> keys;
    for (std::int64_t i = 0; i < 5000; ++i)
        keys.push_back((i % 2 != 0 ? -1 : 1) * (i * 977 + 3));
    for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_TRUE(map.insert(keys[i], static_cast<std::uint32_t>(i)));
    EXPECT_EQ(map.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_EQ(map.find(keys[i]), i) << keys[i];
    EXPECT_EQ(map.find(0x7fffffffffffffffll), FlatMap64::kNotFound);
}

TEST(ArenaFlatMap, ClearEmptiesWithoutShrinking)
{
    FlatMap64 map;
    for (std::int64_t i = 0; i < 100; ++i)
        map.insert(i, static_cast<std::uint32_t>(i));
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(5), FlatMap64::kNotFound);
    EXPECT_TRUE(map.insert(5, 77));
    EXPECT_EQ(map.find(5), 77u);
}

} // namespace
