#include "util/codec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

namespace
{

using namespace mocktails::util;

TEST(Zigzag, RoundTripsInterestingValues)
{
    for (std::int64_t v :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
          std::int64_t{1234567}, std::int64_t{-1234567},
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
}

TEST(Zigzag, SmallMagnitudesGetSmallCodes)
{
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
    EXPECT_EQ(zigzagEncode(2), 4u);
}

TEST(Varint, RoundTripsBoundaries)
{
    ByteWriter w;
    const std::uint64_t values[] = {0,
                                    1,
                                    127,
                                    128,
                                    16383,
                                    16384,
                                    std::uint64_t{1} << 35,
                                    ~std::uint64_t{0}};
    for (const auto v : values)
        w.putVarint(v);

    ByteReader r(w.bytes());
    for (const auto v : values)
        EXPECT_EQ(r.getVarint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(Varint, SingleByteForSmallValues)
{
    ByteWriter w;
    w.putVarint(127);
    EXPECT_EQ(w.size(), 1u);
    w.putVarint(128);
    EXPECT_EQ(w.size(), 3u); // 127 took 1 byte, 128 takes 2
}

TEST(Varint, SignedRoundTrip)
{
    ByteWriter w;
    const std::int64_t values[] = {0, -1, 1, -64, 64, -1000000, 1000000,
                                   std::numeric_limits<std::int64_t>::min()};
    for (const auto v : values)
        w.putSigned(v);
    ByteReader r(w.bytes());
    for (const auto v : values)
        EXPECT_EQ(r.getSigned(), v);
    EXPECT_TRUE(r.ok());
}

TEST(Codec, StringRoundTrip)
{
    ByteWriter w;
    w.putString("");
    w.putString("hello");
    w.putString(std::string(1000, 'x'));
    ByteReader r(w.bytes());
    EXPECT_EQ(r.getString(), "");
    EXPECT_EQ(r.getString(), "hello");
    EXPECT_EQ(r.getString(), std::string(1000, 'x'));
    EXPECT_TRUE(r.ok());
}

TEST(Codec, DoubleRoundTrip)
{
    ByteWriter w;
    const double values[] = {0.0, 1.5, -3.25, 1e300, -1e-300};
    for (const double v : values)
        w.putDouble(v);
    ByteReader r(w.bytes());
    for (const double v : values)
        EXPECT_EQ(r.getDouble(), v);
}

TEST(Codec, TruncatedVarintSetsError)
{
    ByteWriter w;
    w.putByte(0x80); // continuation bit with no following byte
    ByteReader r(w.bytes());
    (void)r.getVarint();
    EXPECT_FALSE(r.ok());
}

TEST(Codec, OverlongVarintSetsError)
{
    ByteWriter w;
    for (int i = 0; i < 11; ++i)
        w.putByte(0xff);
    ByteReader r(w.bytes());
    (void)r.getVarint();
    EXPECT_FALSE(r.ok());
}

TEST(Codec, ReadPastEndSetsError)
{
    ByteReader r(nullptr, 0);
    EXPECT_EQ(r.getByte(), 0);
    EXPECT_FALSE(r.ok());
}

TEST(Codec, StringLengthBeyondBufferSetsError)
{
    ByteWriter w;
    w.putVarint(100); // claims 100 bytes, none follow
    ByteReader r(w.bytes());
    (void)r.getString();
    EXPECT_FALSE(r.ok());
}

TEST(Codec, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "codec_test.bin";
    std::vector<std::uint8_t> data = {1, 2, 3, 250, 0};
    ASSERT_TRUE(saveBytes(path, data));
    std::vector<std::uint8_t> loaded;
    ASSERT_TRUE(loadBytes(path, loaded));
    EXPECT_EQ(loaded, data);
    std::remove(path.c_str());
}

TEST(Codec, LoadMissingFileFails)
{
    std::vector<std::uint8_t> bytes;
    EXPECT_FALSE(loadBytes("/nonexistent/path/file.bin", bytes));
}

} // namespace
