#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace
{

using mocktails::util::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 3);
}

TEST(Rng, NearbySeedsAreDecorrelated)
{
    // splitmix64 seeding should break up seed-adjacency structure.
    Rng a(100), b(101);
    EXPECT_NE(a(), b());
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng rng(13);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(17);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(29);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    // The child should not replay the parent's stream.
    Rng parent2(31);
    (void)parent2(); // consume the value that seeded the child
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (child() == parent2());
    EXPECT_LT(equal, 3);
}

} // namespace
