#include "util/compress.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "util/rng.hpp"

namespace
{

using namespace mocktails::util;

std::vector<std::uint8_t>
roundTrip(const std::vector<std::uint8_t> &input)
{
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(decompress(compress(input), out));
    return out;
}

TEST(Compress, EmptyInput)
{
    EXPECT_EQ(roundTrip({}), std::vector<std::uint8_t>{});
}

TEST(Compress, SingleByte)
{
    EXPECT_EQ(roundTrip({42}), std::vector<std::uint8_t>{42});
}

TEST(Compress, ShortLiteralOnly)
{
    std::vector<std::uint8_t> input = {1, 2, 3};
    EXPECT_EQ(roundTrip(input), input);
}

TEST(Compress, RepeatedByteCompresses)
{
    std::vector<std::uint8_t> input(10000, 7);
    const auto compressed = compress(input);
    EXPECT_LT(compressed.size(), input.size() / 10);
    EXPECT_EQ(roundTrip(input), input);
}

TEST(Compress, RepeatedPatternCompresses)
{
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 5000; ++i) {
        input.push_back(static_cast<std::uint8_t>(i % 7));
        input.push_back(static_cast<std::uint8_t>(i % 13));
    }
    const auto compressed = compress(input);
    EXPECT_LT(compressed.size(), input.size() / 2);
    EXPECT_EQ(roundTrip(input), input);
}

TEST(Compress, OverlappingMatchRoundTrip)
{
    // Classic overlap: a run copied from one byte back.
    std::vector<std::uint8_t> input;
    input.push_back(9);
    input.insert(input.end(), 300, 9);
    input.push_back(1);
    EXPECT_EQ(roundTrip(input), input);
}

TEST(Compress, IncompressibleRandomDataRoundTrips)
{
    Rng rng(1234);
    std::vector<std::uint8_t> input(65536);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng());
    const auto compressed = compress(input);
    // Random data does not shrink, but must not blow up badly.
    EXPECT_LT(compressed.size(), input.size() + input.size() / 8 + 64);
    EXPECT_EQ(roundTrip(input), input);
}

TEST(Compress, MixedStructureRoundTrips)
{
    Rng rng(99);
    std::vector<std::uint8_t> input;
    for (int block = 0; block < 50; ++block) {
        if (block % 2 == 0) {
            input.insert(input.end(), 500,
                         static_cast<std::uint8_t>(block));
        } else {
            for (int i = 0; i < 500; ++i)
                input.push_back(static_cast<std::uint8_t>(rng()));
        }
    }
    EXPECT_EQ(roundTrip(input), input);
}

TEST(Compress, LongMatchesBeyondExtensionBoundary)
{
    // Match lengths around 15+4 and 255 extension boundaries.
    for (std::size_t run : {18u, 19u, 20u, 273u, 274u, 275u, 1000u}) {
        std::vector<std::uint8_t> input = {1, 2, 3, 4};
        for (std::size_t i = 0; i < run; ++i)
            input.push_back(input[i]); // repeat prefix cyclically
        EXPECT_EQ(roundTrip(input), input) << "run=" << run;
    }
}

TEST(Compress, LiteralRunsAroundExtensionBoundary)
{
    Rng rng(5);
    for (std::size_t len : {14u, 15u, 16u, 269u, 270u, 271u}) {
        std::vector<std::uint8_t> input(len);
        for (auto &b : input)
            b = static_cast<std::uint8_t>(rng());
        EXPECT_EQ(roundTrip(input), input) << "len=" << len;
    }
}

TEST(Decompress, RejectsTruncatedInput)
{
    std::vector<std::uint8_t> input(1000, 5);
    auto compressed = compress(input);
    compressed.resize(compressed.size() / 2);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(decompress(compressed, out));
}

TEST(Decompress, RejectsEmptyBuffer)
{
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(decompress({}, out));
}

TEST(Decompress, RejectsBogusOffset)
{
    // Hand-craft: header says 8 bytes, token with a match whose offset
    // points before the start of output.
    std::vector<std::uint8_t> bad = {
        8,          // uncompressed size 8
        0x10,       // 1 literal, match_code 0 (length 4)
        0xaa,       // the literal
        0x09, 0x00, // offset 9 > output size 1
    };
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(decompress(bad, out));
}

TEST(Compress, DeterministicOutput)
{
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 4096; ++i)
        input.push_back(static_cast<std::uint8_t>(i * 31));
    EXPECT_EQ(compress(input), compress(input));
}

} // namespace
