#include "util/flat_set.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.hpp"

namespace
{

using mocktails::util::FlatSet64;

TEST(FlatSet, InsertReportsNovelty)
{
    FlatSet64 set;
    EXPECT_TRUE(set.insert(42));
    EXPECT_FALSE(set.insert(42));
    EXPECT_TRUE(set.insert(0)); // zero is a legal key
    EXPECT_FALSE(set.insert(0));
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(42));
    EXPECT_TRUE(set.contains(0));
    EXPECT_FALSE(set.contains(7));
}

TEST(FlatSet, GrowsBeyondInitialCapacity)
{
    FlatSet64 set;
    for (std::uint64_t i = 0; i < 10000; ++i)
        EXPECT_TRUE(set.insert(i * 64));
    EXPECT_EQ(set.size(), 10000u);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        EXPECT_TRUE(set.contains(i * 64));
        EXPECT_FALSE(set.insert(i * 64));
    }
    EXPECT_FALSE(set.contains(63));
}

TEST(FlatSet, MatchesUnorderedSetOnRandomKeys)
{
    FlatSet64 set;
    std::unordered_set<std::uint64_t> reference;
    mocktails::util::Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng.below(4096);
        EXPECT_EQ(set.insert(key), reference.insert(key).second);
    }
    EXPECT_EQ(set.size(), reference.size());
}

TEST(FlatSet, ClearKeepsWorking)
{
    FlatSet64 set(1000);
    for (std::uint64_t i = 0; i < 1000; ++i)
        set.insert(i);
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.contains(1));
    EXPECT_TRUE(set.insert(1));
    EXPECT_EQ(set.size(), 1u);
}

TEST(FlatSet, SizingHintHonoured)
{
    FlatSet64 set(100000);
    for (std::uint64_t i = 0; i < 100000; ++i)
        set.insert(i * 3);
    EXPECT_EQ(set.size(), 100000u);
}

} // namespace
