#include "util/poller.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace
{

using namespace mocktails;

class PollerBackends
    : public ::testing::TestWithParam<util::Poller::Backend>
{
};

TEST_P(PollerBackends, ConstructsValid)
{
    util::Poller poller(GetParam());
#ifndef __linux__
    if (GetParam() == util::Poller::Backend::Epoll) {
        EXPECT_FALSE(poller.valid());
        return;
    }
#endif
    ASSERT_TRUE(poller.valid());
    EXPECT_STRNE(poller.backendName(), "none");
}

TEST_P(PollerBackends, ReportsReadableAndWritable)
{
#ifndef __linux__
    if (GetParam() == util::Poller::Backend::Epoll)
        GTEST_SKIP() << "epoll is Linux-only";
#endif
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    util::Poller poller(GetParam());
    ASSERT_TRUE(poller.valid());
    ASSERT_TRUE(poller.add(fds[0], true, false));

    // Nothing to read yet: wait times out.
    std::vector<util::PollerEvent> events;
    EXPECT_EQ(poller.wait(events, 0), 0);

    const std::uint8_t byte = 7;
    ASSERT_EQ(::write(fds[1], &byte, 1), 1);
    ASSERT_EQ(poller.wait(events, 1000), 1);
    EXPECT_EQ(events[0].fd, fds[0]);
    EXPECT_TRUE(events[0].readable);
    EXPECT_FALSE(events[0].writable);

    // Add write interest: an idle socket is immediately writable.
    ASSERT_TRUE(poller.modify(fds[0], true, true));
    ASSERT_GE(poller.wait(events, 1000), 1);
    bool saw_writable = false;
    for (const util::PollerEvent &ev : events)
        saw_writable = saw_writable || (ev.fd == fds[0] && ev.writable);
    EXPECT_TRUE(saw_writable);

    ASSERT_TRUE(poller.remove(fds[0]));
    EXPECT_EQ(poller.wait(events, 0), 0);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST_P(PollerBackends, ReportsPeerHangupAsEvent)
{
#ifndef __linux__
    if (GetParam() == util::Poller::Backend::Epoll)
        GTEST_SKIP() << "epoll is Linux-only";
#endif
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    util::Poller poller(GetParam());
    ASSERT_TRUE(poller.add(fds[0], true, false));
    ::close(fds[1]);
    std::vector<util::PollerEvent> events;
    ASSERT_EQ(poller.wait(events, 1000), 1);
    // Hangup surfaces as error and/or readable-EOF; either lets the
    // server notice and close.
    EXPECT_TRUE(events[0].error || events[0].readable);
    ::close(fds[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PollerBackends,
    ::testing::Values(util::Poller::Backend::Poll,
                      util::Poller::Backend::Epoll),
    [](const ::testing::TestParamInfo<util::Poller::Backend> &info) {
        return info.param == util::Poller::Backend::Poll ? "poll"
                                                         : "epoll";
    });

TEST(WakePipe, WakesABlockedWait)
{
    util::Poller poller(util::Poller::Backend::Auto);
    util::WakePipe wake;
    ASSERT_TRUE(wake.valid());
    ASSERT_TRUE(poller.add(wake.fd(), true, false));

    std::thread notifier([&wake] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        wake.notify();
    });
    std::vector<util::PollerEvent> events;
    // Blocks until notify() — far shorter than the 5 s cap.
    EXPECT_EQ(poller.wait(events, 5000), 1);
    EXPECT_EQ(events[0].fd, wake.fd());
    notifier.join();
    wake.drain();
    EXPECT_EQ(poller.wait(events, 0), 0);
}

TEST(WakePipe, NotifyIsIdempotentWhileUndrained)
{
    util::WakePipe wake;
    ASSERT_TRUE(wake.valid());
    for (int i = 0; i < 100000; ++i)
        wake.notify(); // must not block once the pipe is full
    wake.drain();
    util::Poller poller(util::Poller::Backend::Auto);
    ASSERT_TRUE(poller.add(wake.fd(), true, false));
    std::vector<util::PollerEvent> events;
    EXPECT_EQ(poller.wait(events, 0), 0);
}

TEST(PollerHelpers, NonBlockingAndCloexec)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    EXPECT_TRUE(util::setNonBlocking(fds[0]));
    EXPECT_TRUE(util::setCloseOnExec(fds[0]));
    EXPECT_NE(::fcntl(fds[0], F_GETFL, 0) & O_NONBLOCK, 0);
    EXPECT_NE(::fcntl(fds[0], F_GETFD, 0) & FD_CLOEXEC, 0);
    EXPECT_FALSE(util::setNonBlocking(-1));
    EXPECT_FALSE(util::setCloseOnExec(-1));
    ::close(fds[0]);
    ::close(fds[1]);
}

} // namespace
