#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"

namespace
{

using mocktails::util::Histogram;

TEST(Histogram, EmptyDefaults)
{
    Histogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.count(5), 0u);
}

TEST(Histogram, CountsAndMean)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(2);
    h.add(3);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.count(2), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_EQ(h.minValue(), 1);
    EXPECT_EQ(h.maxValue(), 3);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h;
    h.add(10, 5);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(10), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, NegativeValues)
{
    Histogram h;
    h.add(-5);
    h.add(5);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.minValue(), -5);
}

TEST(Histogram, DenseClampsTail)
{
    Histogram h;
    h.add(0);
    h.add(2);
    h.add(100); // beyond the dense size
    h.add(-4);  // below zero clamps to bin 0
    const auto dense = h.dense(4);
    ASSERT_EQ(dense.size(), 4u);
    EXPECT_EQ(dense[0], 2u); // value 0 and value -4
    EXPECT_EQ(dense[2], 1u);
    EXPECT_EQ(dense[3], 1u); // clamped 100
}

TEST(Histogram, DenseMatchesFixedHistogramEdgeSemantics)
{
    // dense(n) with unit-wide bins is the special case of a
    // FixedHistogram with edges {1, 2, ..., n-1}: both clamp
    // underflow into the first bin and overflow into the last.
    Histogram sparse;
    mocktails::telemetry::FixedHistogram fixed({1, 2, 3});
    for (std::int64_t v : {-7, 0, 0, 1, 2, 3, 3, 99}) {
        sparse.add(v);
        fixed.record(v);
    }
    const auto dense = sparse.dense(4);
    const auto counts = fixed.counts();
    ASSERT_EQ(dense.size(), counts.size());
    for (std::size_t i = 0; i < dense.size(); ++i)
        EXPECT_EQ(dense[i], counts[i]) << "bin " << i;
}

TEST(Histogram, DenseZeroSize)
{
    Histogram h;
    h.add(1);
    EXPECT_TRUE(h.dense(0).empty());
}

TEST(Histogram, DistanceToSelfIsZero)
{
    Histogram h;
    h.add(1);
    h.add(2, 3);
    EXPECT_DOUBLE_EQ(h.distanceTo(h), 0.0);
}

TEST(Histogram, DistanceOfDisjointIsTwo)
{
    Histogram a, b;
    a.add(1, 10);
    b.add(2, 10);
    EXPECT_DOUBLE_EQ(a.distanceTo(b), 2.0);
}

TEST(Histogram, DistanceIsScaleInvariant)
{
    Histogram a, b;
    a.add(1, 1);
    a.add(2, 1);
    b.add(1, 100);
    b.add(2, 100);
    EXPECT_NEAR(a.distanceTo(b), 0.0, 1e-12);
}

TEST(Histogram, DistanceSymmetric)
{
    Histogram a, b;
    a.add(1, 3);
    a.add(4, 1);
    b.add(1, 1);
    b.add(9, 2);
    EXPECT_DOUBLE_EQ(a.distanceTo(b), b.distanceTo(a));
}

TEST(Histogram, DistanceBothEmpty)
{
    Histogram a, b;
    EXPECT_DOUBLE_EQ(a.distanceTo(b), 0.0);
}

} // namespace
