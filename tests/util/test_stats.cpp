#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace
{

using namespace mocktails::util;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMeanAndVariance)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStats, MatchesBatchVariance)
{
    std::vector<double> values = {1.5, -2.0, 3.25, 8.0, 0.0, -1.0};
    RunningStats s;
    for (double v : values)
        s.add(v);
    EXPECT_NEAR(s.mean(), arithmeticMean(values), 1e-12);
    EXPECT_NEAR(s.variance(), variance(values), 1e-12);
}

TEST(RunningStats, MinMaxGuardedWhenEmpty)
{
    RunningStats s;
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    s.add(-4.0);
    EXPECT_DOUBLE_EQ(s.min(), -4.0);
    EXPECT_DOUBLE_EQ(s.max(), -4.0);
    s.add(7.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.min(), -4.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, SampleVarianceUsesBesselCorrection)
{
    RunningStats s;
    EXPECT_EQ(s.sampleVariance(), 0.0);
    s.add(1.0);
    EXPECT_EQ(s.sampleVariance(), 0.0); // n < 2 guards to zero
    s.add(3.0);
    // Population variance 1, sample variance 2 (m2 = 2, n - 1 = 1).
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 2.0);
    EXPECT_DOUBLE_EQ(s.sampleStddev(), std::sqrt(2.0));
}

TEST(RunningStats, SampleAndPopulationVarianceRelation)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    const double n = static_cast<double>(s.count());
    EXPECT_NEAR(s.sampleVariance(), s.variance() * n / (n - 1.0),
                1e-12);
}

TEST(PercentError, ExactMatchIsZero)
{
    EXPECT_DOUBLE_EQ(percentError(10.0, 10.0), 0.0);
}

TEST(PercentError, SymmetricMagnitude)
{
    EXPECT_DOUBLE_EQ(percentError(11.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(percentError(9.0, 10.0), 10.0);
}

TEST(PercentError, ZeroReference)
{
    EXPECT_DOUBLE_EQ(percentError(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentError(5.0, 0.0), 100.0);
}

TEST(PercentError, NegativeReference)
{
    EXPECT_DOUBLE_EQ(percentError(-9.0, -10.0), 10.0);
}

TEST(PercentError, NegativeMeasuredAgainstZeroReference)
{
    // Zero baseline with a nonzero measurement saturates at 100%
    // whatever the sign of the measurement.
    EXPECT_DOUBLE_EQ(percentError(-5.0, 0.0), 100.0);
}

TEST(PercentError, SignCrossingDelta)
{
    // Measured and reference on opposite sides of zero: the error is
    // the full gap relative to |reference|, not a signed cancellation.
    EXPECT_DOUBLE_EQ(percentError(9.0, -10.0), 190.0);
    EXPECT_DOUBLE_EQ(percentError(-10.0, 10.0), 200.0);
}

TEST(PercentError, NegativeExactMatchIsZero)
{
    EXPECT_DOUBLE_EQ(percentError(-123.4, -123.4), 0.0);
}

TEST(GeometricMean, Basics)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geometricMean({5.0}), 5.0);
    EXPECT_EQ(geometricMean({}), 0.0);
}

TEST(GeometricMean, HandlesZeros)
{
    // Zeros contribute epsilon instead of collapsing to -inf.
    const double g = geometricMean({0.0, 100.0});
    EXPECT_GT(g, 0.0);
    EXPECT_LT(g, 100.0);
}

TEST(ArithmeticMean, Basics)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_EQ(arithmeticMean({}), 0.0);
}

TEST(Variance, FewerThanTwoIsZero)
{
    EXPECT_EQ(variance({}), 0.0);
    EXPECT_EQ(variance({3.0}), 0.0);
}

} // namespace
