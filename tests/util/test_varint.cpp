#include "util/varint.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/codec.hpp"

namespace
{

using namespace mocktails;

/** Encode + decode one value through the raw-buffer helpers. */
void
roundTrip(std::uint64_t value, std::size_t expected_bytes)
{
    std::uint8_t buf[util::kMaxVarintBytes] = {};
    const std::size_t written = util::encodeVarint(value, buf);
    EXPECT_EQ(written, expected_bytes) << "value " << value;
    EXPECT_EQ(util::varintSize(value), expected_bytes);

    std::uint64_t decoded = 0;
    const std::size_t used = util::decodeVarint(buf, written, decoded);
    EXPECT_EQ(used, written);
    EXPECT_EQ(decoded, value);

    // Extra trailing bytes must not be consumed.
    std::uint8_t padded[util::kMaxVarintBytes + 4] = {};
    for (std::size_t i = 0; i < written; ++i)
        padded[i] = buf[i];
    padded[written] = 0x55;
    std::uint64_t decoded2 = 0;
    EXPECT_EQ(util::decodeVarint(padded, sizeof(padded), decoded2),
              written);
    EXPECT_EQ(decoded2, value);
}

TEST(Varint, BoundaryValuesRoundTrip)
{
    roundTrip(0, 1);
    roundTrip(1, 1);
    roundTrip(0x7f, 1);                 // 2^7 - 1, largest 1-byte value
    roundTrip(std::uint64_t{1} << 7, 2);  // 2^7, smallest 2-byte value
    roundTrip((std::uint64_t{1} << 14) - 1, 2);
    roundTrip(std::uint64_t{1} << 14, 3);
    roundTrip((std::uint64_t{1} << 32) - 1, 5);
    roundTrip(std::uint64_t{1} << 32, 5); // 2^32 still fits 5 bytes
    roundTrip((std::uint64_t{1} << 35) - 1, 5);
    roundTrip(std::uint64_t{1} << 35, 6);
    roundTrip((std::uint64_t{1} << 63) - 1, 9);
    roundTrip(std::uint64_t{1} << 63, 10);
    roundTrip(std::numeric_limits<std::uint64_t>::max(), 10); // 2^64-1
}

TEST(Varint, AppendMatchesEncode)
{
    const std::uint64_t values[] = {
        0, 0x7f, 0x80, 1u << 20,
        std::numeric_limits<std::uint64_t>::max()};
    for (const std::uint64_t v : values) {
        std::vector<std::uint8_t> appended;
        util::appendVarint(appended, v);
        std::uint8_t buf[util::kMaxVarintBytes];
        const std::size_t n = util::encodeVarint(v, buf);
        ASSERT_EQ(appended.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(appended[i], buf[i]);
    }
}

TEST(Varint, TruncatedInputRejected)
{
    std::uint8_t buf[util::kMaxVarintBytes];
    const std::size_t n = util::encodeVarint(
        std::numeric_limits<std::uint64_t>::max(), buf);
    std::uint64_t value = 0;
    for (std::size_t cut = 0; cut < n; ++cut)
        EXPECT_EQ(util::decodeVarint(buf, cut, value), 0u)
            << "cut at " << cut;
    EXPECT_EQ(util::decodeVarint(buf, n, value), n);

    EXPECT_EQ(util::decodeVarint(nullptr, 0, value), 0u);
}

TEST(Varint, OverlongInputRejected)
{
    // 11 continuation bytes: more than any 64-bit value encodes to.
    std::uint8_t overlong[12];
    for (std::uint8_t &b : overlong)
        b = 0x80;
    overlong[11] = 0x01;
    std::uint64_t value = 0;
    EXPECT_EQ(util::decodeVarint(overlong, sizeof(overlong), value), 0u);
}

TEST(Varint, ZigzagBoundaries)
{
    const std::int64_t values[] = {
        0, -1, 1, -64, 64,
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()};
    for (const std::int64_t v : values)
        EXPECT_EQ(util::zigzagDecode(util::zigzagEncode(v)), v);
    // Small magnitudes must map onto small codes (the varint payoff).
    EXPECT_EQ(util::zigzagEncode(0), 0u);
    EXPECT_EQ(util::zigzagEncode(-1), 1u);
    EXPECT_EQ(util::zigzagEncode(1), 2u);
    EXPECT_EQ(util::zigzagEncode(-2), 3u);
}

TEST(Varint, ByteStreamCodecUsesSameDialect)
{
    // ByteWriter/ByteReader delegate to varint.hpp; spot-check the
    // bytes agree so every format keeps one wire dialect.
    util::ByteWriter w;
    w.putVarint(std::uint64_t{1} << 32);
    std::uint8_t buf[util::kMaxVarintBytes];
    const std::size_t n =
        util::encodeVarint(std::uint64_t{1} << 32, buf);
    ASSERT_EQ(w.bytes().size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(w.bytes()[i], buf[i]);

    util::ByteReader r(w.bytes());
    EXPECT_EQ(r.getVarint(), std::uint64_t{1} << 32);
    EXPECT_TRUE(r.ok());
}

} // namespace
