#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace
{

using namespace mocktails;

TEST(ThreadPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(util::ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    util::ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);

    std::atomic<int> counter{0};
    std::atomic<int> done{0};
    constexpr int kTasks = 64;
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            counter.fetch_add(1);
            done.fetch_add(1);
        });
    }
    // The destructor drains the queue before joining.
    while (done.load() < kTasks)
        std::this_thread::yield();
    EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    {
        util::ThreadPool pool(1);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { counter.fetch_add(1); });
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, OnWorkerThreadIsVisibleInsideTasks)
{
    EXPECT_FALSE(util::ThreadPool::onWorkerThread());
    util::ThreadPool pool(1);
    std::atomic<bool> inside{false};
    std::atomic<bool> done{false};
    pool.submit([&] {
        inside.store(util::ThreadPool::onWorkerThread());
        done.store(true);
    });
    while (!done.load())
        std::this_thread::yield();
    EXPECT_TRUE(inside.load());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (const unsigned threads : {1u, 2u, 8u}) {
        constexpr std::size_t kN = 1000;
        std::vector<std::atomic<int>> hits(kN);
        util::parallelFor(
            kN, [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
        for (std::size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, DisjointSlotWritesAreDeterministic)
{
    std::vector<std::uint64_t> seq(517), par(517);
    util::parallelFor(
        seq.size(), [&](std::size_t i) { seq[i] = i * i + 7; }, 1);
    util::parallelFor(
        par.size(), [&](std::size_t i) { par[i] = i * i + 7; }, 8);
    EXPECT_EQ(seq, par);
}

TEST(ParallelFor, ZeroAndOneElement)
{
    int calls = 0;
    util::parallelFor(0, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    util::parallelFor(1, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsRunInline)
{
    std::atomic<int> calls{0};
    util::parallelFor(
        8,
        [&](std::size_t) {
            util::parallelFor(
                4, [&](std::size_t) { calls.fetch_add(1); }, 4);
        },
        4);
    EXPECT_EQ(calls.load(), 32);
}

TEST(ParallelFor, ManyMoreChunksThanWorkers)
{
    // n far above the chunk budget exercises the chunk-bag refill
    // path and the caller's participation.
    std::vector<int> out(10000, 0);
    util::parallelFor(
        out.size(), [&](std::size_t i) { out[i] = 1; }, 2);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 10000);
}

} // namespace
