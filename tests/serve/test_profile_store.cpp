#include "serve/profile_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/model_generator.hpp"
#include "core/profile.hpp"
#include "mem/trace.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;

mem::Trace
randomTrace(std::size_t n, std::uint64_t seed)
{
    mem::Trace t("store", "CPU");
    util::Rng rng(seed);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(40);
        t.add(tick, 0x10000 + (rng.below(1 << 16) & ~mem::Addr{7}),
              rng.chance(0.5) ? 64 : 128,
              rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    return t;
}

core::Profile
makeProfile(std::uint64_t seed, std::size_t requests = 300)
{
    core::Profile p = core::buildProfile(
        randomTrace(requests, seed),
        core::PartitionConfig::twoLevelTs(500000));
    p.name = "store-" + std::to_string(seed);
    return p;
}

/** Write a profile to a temp file and return its path. */
std::string
writeProfileFile(const std::string &name, const core::Profile &profile)
{
    const std::string path = testing::TempDir() + name;
    EXPECT_TRUE(core::saveProfile(profile, path));
    return path;
}

TEST(ProfileStore, HitAfterLoadAndCounters)
{
    const std::string path =
        writeProfileFile("store_hit.mkp", makeProfile(1));
    serve::ProfileStore store;
    store.registerProfile("p", path);

    std::string error;
    const auto first = store.get("p", &error);
    ASSERT_NE(first, nullptr) << error;
    EXPECT_EQ(first->profile.name, "store-1");
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.loads(), 1u);

    const auto second = store.get("p");
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second.get(), first.get()); // same resident object
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.loads(), 1u); // no second disk load
    EXPECT_EQ(store.residentCount(), 1u);
    EXPECT_GT(store.residentBytes(), 0u);
}

TEST(ProfileStore, MissingFileSurfacesPathInError)
{
    serve::ProfileStore store;
    store.registerProfile("gone", "/nonexistent/dir/gone.mkp");
    std::string error;
    EXPECT_EQ(store.get("gone", &error), nullptr);
    EXPECT_NE(error.find("/nonexistent/dir/gone.mkp"),
              std::string::npos)
        << error;
    // Failures are not cached: the store stays empty.
    EXPECT_EQ(store.residentCount(), 0u);
}

TEST(ProfileStore, UnknownIdAndPathTraversalRejected)
{
    serve::StoreOptions options;
    options.root = testing::TempDir();
    serve::ProfileStore store(options);
    std::string error;
    EXPECT_EQ(store.get("../etc/passwd", &error), nullptr);
    EXPECT_NE(error.find("unknown profile id"), std::string::npos);
    EXPECT_EQ(store.get("a/b.mkp", &error), nullptr);
}

TEST(ProfileStore, RootResolvesBareIds)
{
    const core::Profile profile = makeProfile(7);
    writeProfileFile("store_root.mkp", profile);
    serve::StoreOptions options;
    options.root = testing::TempDir();
    serve::ProfileStore store(options);
    std::string error;
    const auto got = store.get("store_root.mkp", &error);
    ASSERT_NE(got, nullptr) << error;
    EXPECT_EQ(got->profile.name, "store-7");
}

TEST(ProfileStore, EntryCapacityEvictsLeastRecentlyUsed)
{
    serve::StoreOptions options;
    options.maxEntries = 2;
    serve::ProfileStore store(options);
    store.insert("a", makeProfile(1));
    store.insert("b", makeProfile(2));
    store.insert("c", makeProfile(3)); // evicts "a" (oldest)
    EXPECT_EQ(store.residentCount(), 2u);
    EXPECT_EQ(store.evictions(), 1u);
    ASSERT_NE(store.get("b"), nullptr);
    ASSERT_NE(store.get("c"), nullptr);
    std::string error;
    EXPECT_EQ(store.get("a", &error), nullptr); // no path to reload
}

TEST(ProfileStore, ByteCapacityEvictsButKeepsNewest)
{
    serve::StoreOptions options;
    options.maxBytes = 1; // below any real profile's size
    serve::ProfileStore store(options);
    store.insert("a", makeProfile(1));
    store.insert("b", makeProfile(2));
    // Both inserts bust the budget, but the most recent entry always
    // survives: a store must be able to hold the profile it just
    // loaded.
    EXPECT_EQ(store.residentCount(), 1u);
    ASSERT_NE(store.get("b"), nullptr);
}

TEST(ProfileStore, EvictedProfileSurvivesViaSharedPtr)
{
    serve::StoreOptions options;
    options.maxEntries = 1;
    serve::ProfileStore store(options);
    store.insert("a", makeProfile(1));
    const auto held = store.get("a");
    ASSERT_NE(held, nullptr);
    store.insert("b", makeProfile(2)); // evicts "a"
    EXPECT_EQ(store.residentCount(), 1u);
    // The handle keeps the profile alive regardless.
    EXPECT_EQ(held->profile.name, "store-1");
    EXPECT_FALSE(held->profile.leaves.empty());
}

TEST(ProfileStore, ConcurrentMissesSingleFlight)
{
    const std::string path =
        writeProfileFile("store_flight.mkp", makeProfile(9, 2000));
    serve::ProfileStore store;
    store.registerProfile("p", path);

    constexpr int kThreads = 8;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&store, &ok] {
            const auto got = store.get("p");
            if (got != nullptr && got->profile.name == "store-9")
                ok.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kThreads);
    // Every caller got the profile, but the file was read once.
    EXPECT_EQ(store.loads(), 1u);
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(store.hits(), static_cast<std::uint64_t>(kThreads - 1));
}

} // namespace
