#include "serve/recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "core/model_generator.hpp"
#include "mem/trace.hpp"
#include "serve/client.hpp"
#include "serve/profile_store.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

// ---------------------------------------------------------------------
// Allocation audit for the disabled-recorder hot path.
//
// The whole point of ServeRecorder's inline guard is that a server
// built with recording *available* but *off* pays one relaxed atomic
// load per frame — no locks, no heap. Replacing the global allocation
// functions lets the test assert the "no heap" half directly. The
// counter is process-wide (every test in this binary routes through
// it), so the replacement does nothing but count.
// ---------------------------------------------------------------------

// Under ASan the replacement must stay out of the way: code in
// libstdc++.so still binds to the sanitizer's interposed operator
// new, so a malloc-backed replacement in the executable splits
// new/delete across mismatched allocators and trips
// alloc-dealloc-mismatch. ASan builds keep the sanitizer's operators
// and skip the exact-count assertion (the default build enforces it).
#if defined(__SANITIZE_ADDRESS__)
#define MOCKTAILS_TEST_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MOCKTAILS_TEST_COUNT_ALLOCS 0
#endif
#endif
#ifndef MOCKTAILS_TEST_COUNT_ALLOCS
#define MOCKTAILS_TEST_COUNT_ALLOCS 1
#endif

#if MOCKTAILS_TEST_COUNT_ALLOCS

// The replacements below pair malloc with free by construction; GCC's
// heuristic cannot see through the custom operator new and flags the
// free() as mismatched.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace
{
std::atomic<std::uint64_t> g_allocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#endif // MOCKTAILS_TEST_COUNT_ALLOCS

namespace
{

using namespace mocktails;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::vector<std::uint8_t>
channelLeadBody(std::uint64_t channel, std::size_t padding = 0)
{
    util::ByteWriter w;
    w.putVarint(channel);
    for (std::size_t i = 0; i < padding; ++i)
        w.putByte(static_cast<std::uint8_t>(i));
    return w.bytes();
}

TEST(ServeRecorder, ExtractChannelReadsTheLeadingVarint)
{
    const std::vector<std::uint8_t> body = channelLeadBody(300, 4);
    EXPECT_EQ(serve::extractChannel(serve::MsgType::OpenChannel,
                                    body.data(), body.size()),
              300u);
    EXPECT_EQ(serve::extractChannel(serve::MsgType::Chunk, body.data(),
                                    body.size()),
              300u);
    EXPECT_EQ(serve::extractChannel(serve::MsgType::SynthChunk,
                                    body.data(), body.size()),
              300u);
    EXPECT_EQ(serve::extractChannel(serve::MsgType::Closed, body.data(),
                                    body.size()),
              300u);

    // Connection-scoped types have no channel, whatever the body says.
    EXPECT_EQ(serve::extractChannel(serve::MsgType::Hello, body.data(),
                                    body.size()),
              0u);
    EXPECT_EQ(serve::extractChannel(serve::MsgType::ServerStats,
                                    body.data(), body.size()),
              0u);

    // A truncated body must not read past the end: empty -> 0.
    EXPECT_EQ(serve::extractChannel(serve::MsgType::Chunk, nullptr, 0),
              0u);
}

TEST(ServeRecorder, FileRoundTripPreservesEveryField)
{
    const std::string path = tempPath("recorder_roundtrip.mksr");
    serve::ServeRecorder recorder;
    std::string error;
    ASSERT_TRUE(recorder.open(path, &error)) << error;
    EXPECT_TRUE(recorder.enabled());

    const std::vector<std::uint8_t> hello = {0x56, 0x53, 0x4b, 0x4d,
                                             0x04, 0x02};
    const std::vector<std::uint8_t> empty;
    const std::vector<std::uint8_t> chunk = channelLeadBody(7, 32);
    recorder.record(serve::FrameDirection::ClientToServer, 3,
                    serve::MsgType::Hello, hello.data(), hello.size());
    recorder.record(serve::FrameDirection::ServerToClient, 3,
                    serve::MsgType::HelloOk, empty.data(),
                    empty.size());
    recorder.record(serve::FrameDirection::ServerToClient, 3,
                    serve::MsgType::Chunk, chunk.data(), chunk.size());
    EXPECT_EQ(recorder.frames(), 3u);
    EXPECT_GT(recorder.bytes(), 0u);
    ASSERT_TRUE(recorder.close(&error)) << error;
    EXPECT_FALSE(recorder.enabled());

    serve::Recording recording;
    ASSERT_TRUE(serve::loadRecording(path, recording, &error)) << error;
    ASSERT_EQ(recording.frames.size(), 3u);

    EXPECT_EQ(recording.frames[0].dir,
              serve::FrameDirection::ClientToServer);
    EXPECT_EQ(recording.frames[0].conn, 3u);
    EXPECT_EQ(recording.frames[0].channel, 0u);
    EXPECT_EQ(recording.frames[0].type, serve::MsgType::Hello);
    EXPECT_EQ(recording.frames[0].body, hello);

    EXPECT_EQ(recording.frames[1].dir,
              serve::FrameDirection::ServerToClient);
    EXPECT_EQ(recording.frames[1].type, serve::MsgType::HelloOk);
    EXPECT_TRUE(recording.frames[1].body.empty());

    EXPECT_EQ(recording.frames[2].channel, 7u);
    EXPECT_EQ(recording.frames[2].type, serve::MsgType::Chunk);
    EXPECT_EQ(recording.frames[2].body, chunk);

    // Timestamps accumulate monotonically from the deltas.
    EXPECT_LE(recording.frames[0].tsNs, recording.frames[1].tsNs);
    EXPECT_LE(recording.frames[1].tsNs, recording.frames[2].tsNs);
}

TEST(ServeRecorder, LoadRejectsGarbageAndTruncation)
{
    const std::string garbage = tempPath("recorder_garbage.mksr");
    {
        std::ofstream f(garbage, std::ios::binary);
        f << "not a recording at all";
    }
    serve::Recording recording;
    std::string error;
    EXPECT_FALSE(serve::loadRecording(garbage, recording, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

    // A valid recording cut off mid-record must fail loudly, not
    // return a silently shorter frame list.
    const std::string full = tempPath("recorder_full.mksr");
    serve::ServeRecorder recorder;
    ASSERT_TRUE(recorder.open(full, &error)) << error;
    const std::vector<std::uint8_t> body = channelLeadBody(1, 64);
    recorder.record(serve::FrameDirection::ClientToServer, 1,
                    serve::MsgType::OpenChannel, body.data(),
                    body.size());
    ASSERT_TRUE(recorder.close(&error)) << error;

    std::ifstream in(full, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    const std::string cut = tempPath("recorder_cut.mksr");
    {
        std::ofstream f(cut, std::ios::binary);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() - 10));
    }
    EXPECT_FALSE(serve::loadRecording(cut, recording, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(ServeRecorder, JsonlExportIsLossless)
{
    const std::string path = tempPath("recorder_jsonl.mksr");
    serve::ServeRecorder recorder;
    std::string error;
    ASSERT_TRUE(recorder.open(path, &error)) << error;
    const std::vector<std::uint8_t> body = {0xde, 0xad, 0xbe, 0xef};
    recorder.record(serve::FrameDirection::ClientToServer, 2,
                    serve::MsgType::Hello, body.data(), body.size());
    recorder.record(serve::FrameDirection::ServerToClient, 2,
                    serve::MsgType::Error, body.data(), 2);
    ASSERT_TRUE(recorder.close(&error)) << error;

    serve::Recording recording;
    ASSERT_TRUE(serve::loadRecording(path, recording, &error)) << error;

    const std::string jsonl = tempPath("recorder_export.jsonl");
    ASSERT_TRUE(serve::exportRecordingJsonl(recording, jsonl, &error))
        << error;

    std::ifstream in(jsonl);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
    EXPECT_NE(lines[0].find("\"dir\":\"c2s\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"type\":\"Hello\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"payload\":\"deadbeef\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"dir\":\"s2c\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"type\":\"Error\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"payload\":\"dead\""), std::string::npos);
}

TEST(ServeRecorder, DisabledPathWritesNothingAndAllocatesNothing)
{
    serve::ServeRecorder recorder; // never opened: disabled
    const std::vector<std::uint8_t> body = channelLeadBody(1, 128);

#if MOCKTAILS_TEST_COUNT_ALLOCS
    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
#endif
    for (int i = 0; i < 10000; ++i)
        recorder.record(serve::FrameDirection::ServerToClient, 1,
                        serve::MsgType::Chunk, body.data(),
                        body.size());
#if MOCKTAILS_TEST_COUNT_ALLOCS
    const std::uint64_t after =
        g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before)
        << "the disabled record() path must never touch the heap";
#endif
    EXPECT_EQ(recorder.frames(), 0u);
    EXPECT_EQ(recorder.bytes(), 0u);
}

TEST(ServeRecorder, ServerLoopbackCapturesBothDirections)
{
    const char *env = std::getenv("MOCKTAILS_SERVE_TEST_THREADS");
    if (env != nullptr)
        util::ThreadPool::setGlobalThreadCount(
            static_cast<unsigned>(std::atoi(env)));

    mem::Trace t("rec", "GPU");
    util::Rng rng(5);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < 600; ++i) {
        tick += rng.below(16);
        t.add(tick, 0x4000 + (rng.below(1 << 16) & ~mem::Addr{7}), 64,
              rng.chance(0.5) ? mem::Op::Write : mem::Op::Read);
    }
    serve::ProfileStore store;
    store.insert("p.mkp",
                 core::buildProfile(
                     t, core::PartitionConfig::twoLevelTs(500000)));

    const std::string path = tempPath("recorder_loopback.mksr");
    serve::ServeRecorder recorder;
    std::string error;
    ASSERT_TRUE(recorder.open(path, &error)) << error;

    serve::ServerOptions options;
    options.port = 0;
    options.recorder = &recorder;
    serve::StreamServer server(store, options);
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), {}, &error))
        << error;
    serve::RemoteSession session;
    ASSERT_TRUE(client.open("p.mkp", 1, session, &error)) << error;
    std::vector<mem::Request> out;
    ASSERT_TRUE(client.fetch(session, out, 100, &error)) << error;
    ASSERT_TRUE(client.close(session, &error)) << error;
    client.disconnect();

    server.waitForConnections(1);
    server.stop();
    ASSERT_TRUE(recorder.close(&error)) << error;

    serve::Recording recording;
    ASSERT_TRUE(serve::loadRecording(path, recording, &error)) << error;
    ASSERT_GE(recording.frames.size(), 8u);

    // The capture starts with the client's Hello and answers it.
    EXPECT_EQ(recording.frames[0].dir,
              serve::FrameDirection::ClientToServer);
    EXPECT_EQ(recording.frames[0].type, serve::MsgType::Hello);
    EXPECT_EQ(recording.frames[1].dir,
              serve::FrameDirection::ServerToClient);
    EXPECT_EQ(recording.frames[1].type, serve::MsgType::HelloOk);

    std::size_t c2s = 0, s2c = 0, chunks = 0;
    for (const serve::RecordedFrame &frame : recording.frames) {
        EXPECT_EQ(frame.conn, recording.frames[0].conn);
        if (frame.dir == serve::FrameDirection::ClientToServer)
            ++c2s;
        else
            ++s2c;
        if (frame.type == serve::MsgType::Chunk)
            ++chunks;
    }
    EXPECT_GT(c2s, 0u);
    EXPECT_GT(s2c, 0u);
    EXPECT_GT(chunks, 0u);
    // The strict v1-style cycle answers every command exactly once.
    EXPECT_EQ(c2s, s2c);
}

} // namespace
