#include "serve/replay.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/model_generator.hpp"
#include "mem/trace.hpp"
#include "serve/client.hpp"
#include "serve/profile_store.hpp"
#include "serve/protocol.hpp"
#include "serve/recorder.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace
{

using namespace mocktails;

void
configurePoolFromEnv()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    const char *env = std::getenv("MOCKTAILS_SERVE_TEST_THREADS");
    if (env != nullptr)
        util::ThreadPool::setGlobalThreadCount(
            static_cast<unsigned>(std::atoi(env)));
}

/**
 * The replay tests record against one server and replay against a
 * freshly-built second one, so they lean on the profile build being
 * deterministic (the same trace always yields the same profile — the
 * property the CLI determinism tests pin down).
 */
core::Profile
testProfile()
{
    mem::Trace t("replayed", "NPU");
    util::Rng rng(11);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < 800; ++i) {
        tick += rng.below(24);
        t.add(tick, 0x8000 + (rng.below(1 << 17) & ~mem::Addr{7}),
              rng.chance(0.5) ? 64 : 128,
              rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    core::Profile p = core::buildProfile(
        t, core::PartitionConfig::twoLevelTs(500000));
    p.name = "replayed";
    p.device = "NPU";
    return p;
}

/** Store + server, optionally recording to @p recorder. */
struct Fixture
{
    serve::ProfileStore store;
    serve::StreamServer server;

    explicit Fixture(serve::ServeRecorder *recorder = nullptr)
        : server(store, options(recorder))
    {
        configurePoolFromEnv();
        store.insert("p.mkp", testProfile());
        std::string error;
        EXPECT_TRUE(server.start(&error)) << error;
    }

    static serve::ServerOptions
    options(serve::ServeRecorder *recorder)
    {
        serve::ServerOptions o;
        o.port = 0;
        o.recorder = recorder;
        return o;
    }
};

/** Record one strict-cycle fetch (v1 or v2 handshake). */
serve::Recording
recordStrictFetch(std::uint32_t version, const std::string &path)
{
    serve::ServeRecorder recorder;
    std::string error;
    EXPECT_TRUE(recorder.open(path, &error)) << error;
    serve::Recording recording;
    {
        Fixture fixture(&recorder);
        serve::ClientOptions options;
        options.protocolVersion = version;
        serve::Client client;
        EXPECT_TRUE(client.connect("127.0.0.1", fixture.server.port(),
                                   options, &error))
            << error;
        serve::RemoteSession session;
        EXPECT_TRUE(client.open("p.mkp", 42, session, &error)) << error;
        std::vector<mem::Request> out;
        EXPECT_TRUE(client.fetch(session, out, 97, &error)) << error;
        EXPECT_TRUE(client.close(session, &error)) << error;
        client.disconnect();
        fixture.server.waitForConnections(1);
        fixture.server.stop();
    }
    EXPECT_TRUE(recorder.close(&error)) << error;
    EXPECT_TRUE(serve::loadRecording(path, recording, &error)) << error;
    EXPECT_FALSE(recording.frames.empty());
    return recording;
}

/** Record a two-channel mux fetchAll over one connection. */
serve::Recording
recordMuxFetch(const std::string &path)
{
    serve::ServeRecorder recorder;
    std::string error;
    EXPECT_TRUE(recorder.open(path, &error)) << error;
    serve::Recording recording;
    {
        Fixture fixture(&recorder);
        serve::MuxClient client;
        EXPECT_TRUE(client.connect("127.0.0.1", fixture.server.port(),
                                   {}, &error))
            << error;
        const std::vector<serve::FetchSpec> specs = {{"p.mkp", 1},
                                                     {"p.mkp", 2}};
        std::vector<std::vector<mem::Request>> outs;
        EXPECT_TRUE(client.fetchAll(specs, outs, 64, 2, &error))
            << error;
        client.disconnect();
        fixture.server.waitForConnections(1);
        fixture.server.stop();
    }
    EXPECT_TRUE(recorder.close(&error)) << error;
    EXPECT_TRUE(serve::loadRecording(path, recording, &error)) << error;
    EXPECT_FALSE(recording.frames.empty());
    return recording;
}

TEST(ServeReplay, StrictFetchReplaysByteIdentical)
{
    const serve::Recording recording = recordStrictFetch(
        serve::kVersion, testing::TempDir() + "replay_v2.mksr");

    Fixture fresh;
    serve::ReplayResult result;
    std::string error;
    ASSERT_TRUE(serve::replayRecording(recording, "127.0.0.1",
                                       fresh.server.port(), {}, result,
                                       &error))
        << error;
    fresh.server.stop();

    EXPECT_EQ(result.connections, 1u);
    EXPECT_GT(result.framesSent, 0u);
    EXPECT_EQ(result.framesReceived, result.framesSent);
    EXPECT_GT(result.framesCompared, 0u);
    EXPECT_TRUE(result.ok()) << result.mismatches.size()
                             << " mismatches, first: "
                             << (result.mismatches.empty()
                                     ? ""
                                     : result.mismatches[0].detail);
}

TEST(ServeReplay, LegacyV1RecordingReplaysByteIdentical)
{
    // v1's strict alternation is reconstructed by the causal gate:
    // every recorded command waits for the recorded response count.
    const serve::Recording recording = recordStrictFetch(
        serve::kVersionLegacy, testing::TempDir() + "replay_v1.mksr");

    Fixture fresh;
    serve::ReplayResult result;
    std::string error;
    ASSERT_TRUE(serve::replayRecording(recording, "127.0.0.1",
                                       fresh.server.port(), {}, result,
                                       &error))
        << error;
    fresh.server.stop();
    EXPECT_GT(result.framesCompared, 0u);
    EXPECT_TRUE(result.ok()) << (result.mismatches.empty()
                                     ? ""
                                     : result.mismatches[0].detail);
}

TEST(ServeReplay, MuxRecordingReplaysByteIdentical)
{
    const serve::Recording recording =
        recordMuxFetch(testing::TempDir() + "replay_mux.mksr");

    Fixture fresh;
    serve::ReplayResult result;
    std::string error;
    ASSERT_TRUE(serve::replayRecording(recording, "127.0.0.1",
                                       fresh.server.port(), {}, result,
                                       &error))
        << error;
    fresh.server.stop();
    EXPECT_EQ(result.connections, 1u);
    EXPECT_GT(result.framesCompared, 0u);
    EXPECT_TRUE(result.ok()) << (result.mismatches.empty()
                                     ? ""
                                     : result.mismatches[0].detail);
}

TEST(ServeReplay, TimingModeStillMatches)
{
    const serve::Recording recording = recordStrictFetch(
        serve::kVersion, testing::TempDir() + "replay_timing.mksr");

    Fixture fresh;
    serve::ReplayOptions options;
    options.timing = true;
    serve::ReplayResult result;
    std::string error;
    ASSERT_TRUE(serve::replayRecording(recording, "127.0.0.1",
                                       fresh.server.port(), options,
                                       result, &error))
        << error;
    fresh.server.stop();
    EXPECT_TRUE(result.ok());
}

TEST(ServeReplay, InjectedCorruptionIsDetected)
{
    serve::Recording recording = recordStrictFetch(
        serve::kVersion, testing::TempDir() + "replay_corrupt.mksr");
    ASSERT_TRUE(serve::corruptLastChunk(recording));

    Fixture fresh;
    serve::ReplayResult result;
    std::string error;
    ASSERT_TRUE(serve::replayRecording(recording, "127.0.0.1",
                                       fresh.server.port(), {}, result,
                                       &error))
        << error;
    fresh.server.stop();
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.mismatches[0].detail.find("diverges"),
              std::string::npos)
        << result.mismatches[0].detail;
}

TEST(ServeReplay, CorruptLastChunkNeedsARecordedChunk)
{
    serve::Recording recording;
    serve::RecordedFrame hello;
    hello.dir = serve::FrameDirection::ClientToServer;
    hello.type = serve::MsgType::Hello;
    recording.frames.push_back(hello);
    EXPECT_FALSE(serve::corruptLastChunk(recording));
}

TEST(ServeReplay, EmptyRecordingIsAnError)
{
    serve::Recording recording;
    serve::ReplayResult result;
    std::string error;
    EXPECT_FALSE(serve::replayRecording(recording, "127.0.0.1", 1,
                                        {}, result, &error));
    EXPECT_NE(error.find("no frames"), std::string::npos) << error;
}

TEST(ServeReplay, LoadgenClonesAndPublishesLatencies)
{
    const serve::Recording recording = recordStrictFetch(
        serve::kVersion, testing::TempDir() + "replay_loadgen.mksr");

    Fixture fresh;
    serve::ReplayOptions options;
    options.loadgen = 3;
    serve::ReplayResult result;
    std::string error;
    ASSERT_TRUE(serve::replayRecording(recording, "127.0.0.1",
                                       fresh.server.port(), options,
                                       result, &error))
        << error;
    fresh.server.stop();

    EXPECT_EQ(result.connections, 1u);
    EXPECT_EQ(result.clones, 3u);
    // Load generation blasts frames without diffing them.
    EXPECT_EQ(result.framesCompared, 0u);
    EXPECT_TRUE(result.mismatches.empty());
    ASSERT_FALSE(result.chunkLatenciesUs.empty());
    const double p50 = result.latencyPercentileUs(50.0);
    const double p99 = result.latencyPercentileUs(99.0);
    EXPECT_GT(p50, 0.0);
    EXPECT_GE(p99, p50);
}

} // namespace
