#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "mem/trace.hpp"
#include "serve/profile_store.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;

mem::Trace
randomTrace(std::size_t n, std::uint64_t seed)
{
    mem::Trace t("session", "GPU");
    util::Rng rng(seed);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(40);
        t.add(tick, 0x10000 + (rng.below(1 << 18) & ~mem::Addr{7}),
              rng.chance(0.5) ? 64 : 128,
              rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    return t;
}

std::shared_ptr<const serve::StoredProfile>
makeStored(std::size_t requests = 2000, std::uint64_t trace_seed = 11)
{
    auto stored = std::make_shared<serve::StoredProfile>();
    stored->id = "s";
    stored->profile = core::buildProfile(
        randomTrace(requests, trace_seed),
        core::PartitionConfig::twoLevelTs(500000));
    stored->totalRequests = stored->profile.totalRequests();
    return stored;
}

/** Drain a session in chunks of @p chunk requests. */
std::vector<mem::Request>
drain(serve::SynthesisSession &session, std::size_t chunk)
{
    std::vector<mem::Request> out;
    while (!session.done()) {
        const std::size_t made = session.next(out, chunk);
        if (made == 0) {
            if (!session.done() && !session.closed())
                ADD_FAILURE() << "no progress before completion";
            break;
        }
    }
    return out;
}

class SessionEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
};

/**
 * The tentpole determinism contract: a session's stream is
 * bit-identical to one-shot synthesize() for the same seed at every
 * chunk size, and one-shot synthesize() is itself identical at every
 * thread count — so any (chunk, threads) pair agrees.
 */
TEST_P(SessionEquivalence, MatchesOneShotSynthesis)
{
    const auto [chunk, threads] = GetParam();
    const auto stored = makeStored();
    constexpr std::uint64_t kSeed = 42;

    const mem::Trace oneShot =
        core::synthesize(stored->profile, kSeed, threads);

    serve::SessionOptions options;
    options.seed = kSeed;
    serve::SynthesisSession session(stored, options);
    EXPECT_EQ(session.total(), oneShot.size());

    const std::size_t effective_chunk =
        chunk == 0 ? oneShot.size() + 1 : chunk; // 0 = whole trace
    const std::vector<mem::Request> streamed =
        drain(session, effective_chunk);

    ASSERT_EQ(streamed.size(), oneShot.size());
    for (std::size_t i = 0; i < streamed.size(); ++i)
        ASSERT_EQ(streamed[i], oneShot[i]) << "at index " << i;
    EXPECT_EQ(session.emitted(), oneShot.size());
    EXPECT_TRUE(session.done());
}

INSTANTIATE_TEST_SUITE_P(
    ChunkSizesAndThreads, SessionEquivalence,
    testing::Combine(testing::Values<std::size_t>(1, 7, 4096, 0),
                     testing::Values<unsigned>(1, 4)));

TEST(SynthesisSession, BufferedModeMatchesSynchronous)
{
    const auto stored = makeStored();
    serve::SessionOptions sync_options;
    sync_options.seed = 5;
    serve::SynthesisSession sync_session(stored, sync_options);
    const std::vector<mem::Request> expected = drain(sync_session, 97);

    // A tiny buffer forces many producer stalls (backpressure), which
    // must not perturb the stream.
    serve::SessionOptions buffered_options;
    buffered_options.seed = 5;
    buffered_options.bufferCapacity = 8;
    serve::SynthesisSession buffered(stored, buffered_options);
    const std::vector<mem::Request> streamed = drain(buffered, 97);

    ASSERT_EQ(streamed.size(), expected.size());
    for (std::size_t i = 0; i < streamed.size(); ++i)
        ASSERT_EQ(streamed[i], expected[i]) << "at index " << i;
    // With capacity 8 and ~2000 requests the producer must have
    // overrun the consumer at least once.
    EXPECT_GT(buffered.backpressureWaits(), 0u);
}

TEST(SynthesisSession, CursorAdvancesAcrossCalls)
{
    const auto stored = makeStored(500);
    serve::SynthesisSession session(stored, {});
    std::vector<mem::Request> out;
    EXPECT_EQ(session.emitted(), 0u);
    const std::size_t first = session.next(out, 10);
    EXPECT_EQ(first, 10u);
    EXPECT_EQ(session.emitted(), 10u);
    session.next(out, 25);
    EXPECT_EQ(session.emitted(), 35u);
    EXPECT_FALSE(session.done());
}

TEST(SynthesisSession, CloseCancelsStream)
{
    const auto stored = makeStored();
    serve::SessionOptions options;
    options.bufferCapacity = 16;
    serve::SynthesisSession session(stored, options);
    std::vector<mem::Request> out;
    session.next(out, 5);
    session.close();
    EXPECT_TRUE(session.closed());
    EXPECT_FALSE(session.done()); // cancelled, not drained
    EXPECT_EQ(session.next(out, 5), 0u);
    session.close(); // idempotent
}

TEST(SynthesisSession, KeepsProfileAliveAfterEviction)
{
    serve::StoreOptions store_options;
    store_options.maxEntries = 1;
    serve::ProfileStore store(store_options);
    store.insert("a", core::buildProfile(
                          randomTrace(300, 3),
                          core::PartitionConfig::twoLevelTs(500000)));
    auto stored = store.get("a");
    ASSERT_NE(stored, nullptr);
    serve::SynthesisSession session(stored, {});
    stored.reset();

    store.insert("b", core::buildProfile(
                          randomTrace(300, 4),
                          core::PartitionConfig::twoLevelTs(500000)));
    // "a" is evicted; the session still streams from it.
    std::vector<mem::Request> out;
    while (!session.done())
        session.next(out, 64);
    EXPECT_EQ(out.size(), session.total());
}

} // namespace
