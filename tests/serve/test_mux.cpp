/**
 * @file
 * Tests for the v2 multiplexed serve frontend: many interleaved
 * sessions on one connection, per-channel backpressure, protocol
 * version negotiation, and the event loop's independence from the
 * thread pool size (the PR 5 design pinned one pool worker per
 * connection; these are its regression tests).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "mem/trace.hpp"
#include "serve/client.hpp"
#include "serve/profile_store.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace
{

using namespace mocktails;

void
configurePoolFromEnv()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    const char *env = std::getenv("MOCKTAILS_SERVE_TEST_THREADS");
    if (env != nullptr)
        util::ThreadPool::setGlobalThreadCount(
            static_cast<unsigned>(std::atoi(env)));
}

mem::Trace
randomTrace(std::size_t n, std::uint64_t seed)
{
    mem::Trace t("mux", "GPU");
    util::Rng rng(seed);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(40);
        t.add(tick, 0x20000 + (rng.below(1 << 18) & ~mem::Addr{7}),
              rng.chance(0.5) ? 64 : 128,
              rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    return t;
}

core::Profile
makeProfile(std::size_t requests = 1200)
{
    core::Profile p = core::buildProfile(
        randomTrace(requests, 7),
        core::PartitionConfig::twoLevelTs(500000));
    p.name = "muxed";
    p.device = "GPU";
    return p;
}

struct MuxFixture
{
    serve::ProfileStore store;
    serve::StreamServer server;

    explicit MuxFixture(serve::ServerOptions options = {})
        : server(store, patch(options))
    {
        configurePoolFromEnv();
        store.insert("p.mkp", makeProfile());
        std::string error;
        EXPECT_TRUE(server.start(&error)) << error;
    }

    static serve::ServerOptions
    patch(serve::ServerOptions options)
    {
        options.port = 0;
        return options;
    }
};

int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd,
                        reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

TEST(ServeMux, ManyChannelsMatchPerConnectionFetch)
{
    MuxFixture fixture;
    const core::Profile &profile =
        fixture.store.get("p.mkp")->profile;

    // Eight interleaved channels on ONE connection...
    constexpr std::size_t kChannels = 8;
    std::vector<serve::FetchSpec> specs(kChannels);
    for (std::size_t i = 0; i < kChannels; ++i) {
        specs[i].id = "p.mkp";
        specs[i].seed = 100 + i;
    }
    serve::MuxClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    EXPECT_EQ(client.negotiatedVersion(), serve::kVersion);
    std::vector<std::vector<mem::Request>> outs;
    ASSERT_TRUE(client.fetchAll(specs, outs, 113, 3, &error)) << error;
    client.disconnect();

    // ...must be byte-identical to what each stream synthesizes
    // locally (and therefore to a per-connection blocking fetch).
    ASSERT_EQ(outs.size(), kChannels);
    for (std::size_t i = 0; i < kChannels; ++i) {
        const mem::Trace local = core::synthesize(profile, 100 + i);
        ASSERT_EQ(outs[i].size(), local.size()) << "channel " << i + 1;
        for (std::size_t k = 0; k < local.size(); ++k)
            ASSERT_EQ(outs[i][k], local[k])
                << "channel " << i + 1 << ", index " << k;
    }
}

TEST(ServeMux, StalledChannelDoesNotBlockSiblings)
{
    MuxFixture fixture;
    serve::MuxClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;

    // Channel 1 never pulls after opening (a "slow reader" in the
    // pull-credit scheme); channel 2 streams to completion.
    ASSERT_TRUE(client.openChannel(1, "p.mkp", 5, &error)) << error;
    ASSERT_TRUE(client.openChannel(2, "p.mkp", 6, &error)) << error;
    std::vector<mem::Request> slow, fast;
    client.setSink(1, &slow);
    client.setSink(2, &fast);

    int opened = 0;
    while (opened < 2) {
        serve::MuxClient::Event event;
        ASSERT_TRUE(client.nextEvent(event, &error)) << error;
        ASSERT_EQ(event.kind, serve::MuxClient::Event::Kind::Opened);
        ++opened;
    }
    while (!client.channel(2)->done) {
        ASSERT_TRUE(client.pull(2, 97, &error)) << error;
        serve::MuxClient::Event event;
        ASSERT_TRUE(client.nextEvent(event, &error)) << error;
        ASSERT_EQ(event.kind, serve::MuxClient::Event::Kind::Chunk);
        ASSERT_EQ(event.channel, 2u);
    }
    const core::Profile &profile =
        fixture.store.get("p.mkp")->profile;
    const mem::Trace local = core::synthesize(profile, 6);
    ASSERT_EQ(fast.size(), local.size());
    for (std::size_t i = 0; i < local.size(); ++i)
        ASSERT_EQ(fast[i], local[i]) << "index " << i;
    EXPECT_TRUE(slow.empty()) << "unpulled channel received data";

    // The stalled channel is still alive and can catch up.
    ASSERT_TRUE(client.pull(1, 50, &error)) << error;
    serve::MuxClient::Event event;
    ASSERT_TRUE(client.nextEvent(event, &error)) << error;
    EXPECT_EQ(event.kind, serve::MuxClient::Event::Kind::Chunk);
    EXPECT_EQ(event.channel, 1u);
    EXPECT_EQ(slow.size(), 50u);
    client.disconnect();
}

TEST(ServeMux, ChannelErrorLeavesSiblingsStreaming)
{
    MuxFixture fixture;
    serve::MuxClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    ASSERT_TRUE(client.openChannel(1, "p.mkp", 1, &error)) << error;
    ASSERT_TRUE(client.openChannel(2, "nope.mkp", 1, &error)) << error;

    bool saw_error = false;
    bool saw_open = false;
    while (!saw_error || !saw_open) {
        serve::MuxClient::Event event;
        ASSERT_TRUE(client.nextEvent(event, &error)) << error;
        if (event.kind ==
            serve::MuxClient::Event::Kind::ChannelError) {
            EXPECT_EQ(event.channel, 2u);
            EXPECT_EQ(event.code, serve::ErrorCode::UnknownProfile);
            saw_error = true;
        } else {
            EXPECT_EQ(event.channel, 1u);
            saw_open = true;
        }
    }

    // The failed channel took nothing down: channel 1 still streams.
    std::vector<mem::Request> out;
    client.setSink(1, &out);
    ASSERT_TRUE(client.pull(1, 64, &error)) << error;
    serve::MuxClient::Event event;
    ASSERT_TRUE(client.nextEvent(event, &error)) << error;
    EXPECT_EQ(event.kind, serve::MuxClient::Event::Kind::Chunk);
    EXPECT_EQ(out.size(), 64u);
    client.disconnect();
}

TEST(ServeMux, TornFrameMidChannelLeavesServerServing)
{
    MuxFixture fixture;

    // Handshake + open a channel, then tear a frame in half and
    // vanish: the victim is this connection only.
    const int fd = rawConnect(fixture.server.port());
    serve::HelloBody hello;
    util::ByteWriter hw;
    hello.encode(hw);
    ASSERT_TRUE(
        serve::writeFrame(fd, serve::MsgType::Hello, hw.bytes()));
    serve::Frame reply;
    ASSERT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Ok);
    ASSERT_EQ(reply.type, serve::MsgType::HelloOk);
    serve::OpenChannelBody open;
    open.channel = 1;
    open.id = "p.mkp";
    util::ByteWriter ow;
    open.encode(ow);
    ASSERT_TRUE(
        serve::writeFrame(fd, serve::MsgType::OpenChannel, ow.bytes()));
    ASSERT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Ok);
    ASSERT_EQ(reply.type, serve::MsgType::ChannelOpened);

    const std::uint32_t length = 60; // announce 60 bytes, send 3
    std::uint8_t bytes[7];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<std::uint8_t>(length >> (8 * i));
    bytes[4] = bytes[5] = bytes[6] = 0x5a;
    ASSERT_EQ(::send(fd, bytes, sizeof(bytes), 0),
              static_cast<ssize_t>(sizeof(bytes)));
    ::close(fd);
    fixture.server.waitForConnections(1);

    // A fresh multiplexed fetch still works end to end.
    serve::MuxClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    std::vector<serve::FetchSpec> specs{{"p.mkp", 3}};
    std::vector<std::vector<mem::Request>> outs;
    ASSERT_TRUE(client.fetchAll(specs, outs, 0, 2, &error)) << error;
    EXPECT_EQ(outs[0].size(),
              fixture.store.get("p.mkp")->totalRequests);
}

TEST(ServeMux, LegacyV1ClientAgainstV2Server)
{
    MuxFixture fixture;
    serve::ClientOptions options;
    options.protocolVersion = serve::kVersionLegacy;
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(),
                               options, &error))
        << error;
    EXPECT_EQ(client.negotiatedVersion(), serve::kVersionLegacy);

    serve::RemoteSession session;
    ASSERT_TRUE(client.open("p.mkp", 44, session, &error)) << error;
    std::vector<mem::Request> streamed;
    ASSERT_TRUE(client.fetch(session, streamed, 101, &error)) << error;
    ASSERT_TRUE(client.close(session, &error)) << error;

    const mem::Trace local = core::synthesize(
        fixture.store.get("p.mkp")->profile, 44);
    ASSERT_EQ(streamed.size(), local.size());
    for (std::size_t i = 0; i < local.size(); ++i)
        ASSERT_EQ(streamed[i], local[i]) << "index " << i;

    // v1 error semantics intact: unknown ids are connection-safe
    // Error frames, not ChannelError.
    serve::RemoteSession bogus;
    EXPECT_FALSE(client.open("nope.mkp", 1, bogus, &error));
    EXPECT_NE(error.find("unknown profile"), std::string::npos)
        << error;
    ASSERT_TRUE(client.open("p.mkp", 1, session, &error)) << error;
    client.disconnect();
}

TEST(ServeMux, IdleConnectionWithOpenChannelsIsReaped)
{
    serve::ServerOptions options;
    options.readTimeoutMs = 200;
    MuxFixture fixture(options);

    serve::MuxClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    ASSERT_TRUE(client.openChannel(1, "p.mkp", 1, &error)) << error;
    serve::MuxClient::Event event;
    ASSERT_TRUE(client.nextEvent(event, &error)) << error;
    ASSERT_EQ(event.kind, serve::MuxClient::Event::Kind::Opened);

    // Go silent with the channel open: the readiness loop must still
    // notice the idle deadline (no task in flight, nothing queued).
    EXPECT_FALSE(client.nextEvent(event, &error));
    fixture.server.waitForConnections(1);
    EXPECT_EQ(fixture.server.connectionsActive(), 0u);
}

/**
 * The PR 5 regression this rebuild exists for: with ONE pool worker,
 * four concurrent sessions on four separate connections must all make
 * progress, and an unrelated background task on the same pool must
 * complete — the old design parked one worker per connection, so a
 * single-thread pool could serve exactly one client and nothing else.
 */
TEST(ServeMux, SingleWorkerPoolServesConcurrentConnections)
{
    util::ThreadPool one(1);
    serve::ServerOptions options;
    options.pool = &one;
    MuxFixture fixture(options);

    constexpr std::size_t kClients = 4;
    std::vector<std::unique_ptr<serve::Client>> clients;
    std::vector<serve::RemoteSession> sessions(kClients);
    std::string error;
    for (std::size_t i = 0; i < kClients; ++i) {
        clients.push_back(std::make_unique<serve::Client>());
        ASSERT_TRUE(clients[i]->connect(
            "127.0.0.1", fixture.server.port(), {}, &error))
            << error;
        ASSERT_TRUE(clients[i]->open("p.mkp", 10 + i, sessions[i],
                                     &error))
            << error;
    }

    // All four sessions are open and mid-stream; the pool still has
    // room for unrelated work.
    std::promise<void> background_done;
    auto future = background_done.get_future();
    one.submit([&background_done] { background_done.set_value(); });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "background task starved by connection handlers";

    // Round-robin the streams to completion.
    std::vector<std::vector<mem::Request>> outs(kClients);
    bool all_done = false;
    while (!all_done) {
        all_done = true;
        for (std::size_t i = 0; i < kClients; ++i) {
            if (sessions[i].done)
                continue;
            all_done = false;
            ASSERT_TRUE(clients[i]->next(sessions[i], outs[i], 200,
                                         &error))
                << error;
        }
    }
    const core::Profile &profile =
        fixture.store.get("p.mkp")->profile;
    for (std::size_t i = 0; i < kClients; ++i) {
        const mem::Trace local = core::synthesize(profile, 10 + i);
        ASSERT_EQ(outs[i].size(), local.size()) << "client " << i;
        for (std::size_t k = 0; k < local.size(); ++k)
            ASSERT_EQ(outs[i][k], local[k])
                << "client " << i << ", index " << k;
    }
}

/**
 * A server that dies mid-channel must be diagnosed as such: the EOF
 * error names the cut channel, its progress and its outstanding pulls
 * (the satellite fix — the old message was a bare "server closed the
 * connection", useless when eight channels were in flight).
 */
TEST(ServeMux, MidChannelEofNamesTheCutChannel)
{
    // A scripted fake server: handshake, open the channel, answer one
    // pull, then hang up with the second pull outstanding.
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::bind(listen_fd,
                     reinterpret_cast<struct sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listen_fd, 1), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listen_fd,
                            reinterpret_cast<struct sockaddr *>(&addr),
                            &len),
              0);
    const std::uint16_t port = ntohs(addr.sin_port);

    std::thread fake([listen_fd] {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        ASSERT_GE(fd, 0);
        serve::Frame frame;
        // Hello -> HelloOk(v2).
        ASSERT_EQ(serve::readFrame(fd, frame,
                                   serve::kMaxCommandFrameBytes),
                  serve::FrameResult::Ok);
        ASSERT_EQ(frame.type, serve::MsgType::Hello);
        serve::HelloOkBody ok;
        ok.version = serve::kVersion;
        util::ByteWriter okw;
        ok.encode(okw);
        ASSERT_TRUE(
            serve::writeFrame(fd, serve::MsgType::HelloOk, okw.bytes()));
        // OpenChannel -> ChannelOpened promising 100 requests.
        ASSERT_EQ(serve::readFrame(fd, frame,
                                   serve::kMaxCommandFrameBytes),
                  serve::FrameResult::Ok);
        ASSERT_EQ(frame.type, serve::MsgType::OpenChannel);
        serve::OpenedBody opened;
        opened.session = 1;
        opened.name = "muxed";
        opened.device = "GPU";
        opened.leaves = 3;
        opened.total = 100;
        util::ByteWriter ow;
        opened.encode(ow);
        ASSERT_TRUE(serve::writeFrame(
            fd, serve::MsgType::ChannelOpened, ow.bytes()));
        // First pull -> an empty Chunk (not done).
        ASSERT_EQ(serve::readFrame(fd, frame,
                                   serve::kMaxCommandFrameBytes),
                  serve::FrameResult::Ok);
        ASSERT_EQ(frame.type, serve::MsgType::SynthChunk);
        serve::ChunkBody chunk;
        chunk.session = 1;
        chunk.firstSeq = 0;
        chunk.count = 0;
        chunk.done = false;
        mem::RequestCodecState state;
        util::ByteWriter cw;
        chunk.encode(cw, nullptr, state);
        ASSERT_TRUE(
            serve::writeFrame(fd, serve::MsgType::Chunk, cw.bytes()));
        // Second pull -> hang up mid-channel.
        ASSERT_EQ(serve::readFrame(fd, frame,
                                   serve::kMaxCommandFrameBytes),
                  serve::FrameResult::Ok);
        ASSERT_EQ(frame.type, serve::MsgType::SynthChunk);
        ::close(fd);
    });

    serve::MuxClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", port, {}, &error)) << error;
    ASSERT_TRUE(client.openChannel(1, "p.mkp", 1, &error)) << error;
    serve::MuxClient::Event event;
    ASSERT_TRUE(client.nextEvent(event, &error)) << error;
    ASSERT_EQ(event.kind, serve::MuxClient::Event::Kind::Opened);
    ASSERT_TRUE(client.pull(1, 10, &error)) << error;
    ASSERT_TRUE(client.nextEvent(event, &error)) << error;
    ASSERT_EQ(event.kind, serve::MuxClient::Event::Kind::Chunk);
    ASSERT_TRUE(client.pull(1, 10, &error)) << error;

    // The EOF lands here — and the diagnostic must say which channel
    // was cut and how far along it was.
    ASSERT_FALSE(client.nextEvent(event, &error));
    EXPECT_NE(error.find("mid-channel"), std::string::npos) << error;
    EXPECT_NE(error.find("channel 1"), std::string::npos) << error;
    EXPECT_NE(error.find("0/100 requests received"), std::string::npos)
        << error;
    EXPECT_NE(error.find("1 pulls outstanding"), std::string::npos)
        << error;

    fake.join();
    ::close(listen_fd);
    client.disconnect();
}

TEST(ServeMux, PollBackendServesMultiplexedFetch)
{
    serve::ServerOptions options;
    options.pollerBackend = util::Poller::Backend::Poll;
    MuxFixture fixture(options);

    serve::MuxClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    std::vector<serve::FetchSpec> specs{{"p.mkp", 1}, {"p.mkp", 2}};
    std::vector<std::vector<mem::Request>> outs;
    ASSERT_TRUE(client.fetchAll(specs, outs, 128, 2, &error)) << error;
    const core::Profile &profile =
        fixture.store.get("p.mkp")->profile;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const mem::Trace local =
            core::synthesize(profile, specs[i].seed);
        ASSERT_EQ(outs[i].size(), local.size());
        for (std::size_t k = 0; k < local.size(); ++k)
            ASSERT_EQ(outs[i][k], local[k]);
    }
}

} // namespace
