#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "mem/trace.hpp"
#include "serve/client.hpp"
#include "serve/profile_store.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace
{

using namespace mocktails;

/**
 * The sanitize sweep in scripts/check.sh runs these tests at several
 * pool sizes; honour the knob before anything touches the pool.
 */
void
configurePoolFromEnv()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    const char *env = std::getenv("MOCKTAILS_SERVE_TEST_THREADS");
    if (env != nullptr)
        util::ThreadPool::setGlobalThreadCount(
            static_cast<unsigned>(std::atoi(env)));
}

mem::Trace
randomTrace(std::size_t n, std::uint64_t seed)
{
    mem::Trace t("server", "DSP");
    util::Rng rng(seed);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(40);
        t.add(tick, 0x10000 + (rng.below(1 << 18) & ~mem::Addr{7}),
              rng.chance(0.5) ? 64 : 128,
              rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    return t;
}

core::Profile
makeProfile(std::size_t requests = 1500)
{
    core::Profile p = core::buildProfile(
        randomTrace(requests, 21),
        core::PartitionConfig::twoLevelTs(500000));
    p.name = "served";
    p.device = "DSP";
    return p;
}

/** Store + running server on an ephemeral loopback port. */
struct ServerFixture
{
    serve::ProfileStore store;
    serve::StreamServer server;

    explicit ServerFixture(serve::ServerOptions options = {})
        : server(store, patch(options))
    {
        configurePoolFromEnv();
        store.insert("p.mkp", makeProfile());
        std::string error;
        EXPECT_TRUE(server.start(&error)) << error;
    }

    static serve::ServerOptions
    patch(serve::ServerOptions options)
    {
        options.port = 0; // ephemeral
        return options;
    }
};

/** Raw loopback connection (for malformed-input tests). */
int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd,
                        reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

TEST(ServeServer, OpenStreamCloseMatchesLocalSynthesis)
{
    ServerFixture fixture;
    constexpr std::uint64_t kSeed = 99;
    const mem::Trace local =
        core::synthesize(fixture.store.get("p.mkp")->profile, kSeed);

    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    serve::RemoteSession session;
    ASSERT_TRUE(client.open("p.mkp", kSeed, session, &error)) << error;
    EXPECT_EQ(session.name, "served");
    EXPECT_EQ(session.device, "DSP");
    EXPECT_EQ(session.total, local.size());

    std::vector<mem::Request> streamed;
    ASSERT_TRUE(client.fetch(session, streamed, 97, &error)) << error;
    ASSERT_EQ(streamed.size(), local.size());
    for (std::size_t i = 0; i < streamed.size(); ++i)
        ASSERT_EQ(streamed[i], local[i]) << "at index " << i;

    serve::StatsBody stats;
    ASSERT_TRUE(client.stat(session, stats, &error)) << error;
    EXPECT_EQ(stats.emitted, local.size());
    EXPECT_EQ(stats.total, local.size());

    ASSERT_TRUE(client.close(session, &error)) << error;
    client.disconnect();
}

TEST(ServeServer, TwoSessionsSameConnectionAreIndependent)
{
    ServerFixture fixture;
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    serve::RemoteSession a, b;
    ASSERT_TRUE(client.open("p.mkp", 1, a, &error)) << error;
    ASSERT_TRUE(client.open("p.mkp", 2, b, &error)) << error;
    EXPECT_NE(a.id, b.id);

    // Interleave the two streams; each must match its own one-shot.
    std::vector<mem::Request> got_a, got_b;
    while (!a.done || !b.done) {
        if (!a.done)
            ASSERT_TRUE(client.next(a, got_a, 64, &error)) << error;
        if (!b.done)
            ASSERT_TRUE(client.next(b, got_b, 129, &error)) << error;
    }
    const core::Profile &profile =
        fixture.store.get("p.mkp")->profile;
    const mem::Trace local_a = core::synthesize(profile, 1);
    const mem::Trace local_b = core::synthesize(profile, 2);
    ASSERT_EQ(got_a.size(), local_a.size());
    ASSERT_EQ(got_b.size(), local_b.size());
    for (std::size_t i = 0; i < got_a.size(); ++i)
        ASSERT_EQ(got_a[i], local_a[i]) << "stream a, index " << i;
    for (std::size_t i = 0; i < got_b.size(); ++i)
        ASSERT_EQ(got_b[i], local_b[i]) << "stream b, index " << i;
}

TEST(ServeServer, UnknownProfileIsAnError)
{
    ServerFixture fixture;
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    serve::RemoteSession session;
    EXPECT_FALSE(client.open("nope.mkp", 1, session, &error));
    EXPECT_NE(error.find("unknown profile"), std::string::npos)
        << error;
}

TEST(ServeServer, UnknownSessionIsAnError)
{
    ServerFixture fixture;
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    serve::RemoteSession bogus;
    bogus.id = 777;
    std::vector<mem::Request> out;
    EXPECT_FALSE(client.next(bogus, out, 10, &error));
    EXPECT_NE(error.find("unknown session"), std::string::npos)
        << error;
}

TEST(ServeServer, FirstFrameMustBeHello)
{
    ServerFixture fixture;
    const int fd = rawConnect(fixture.server.port());
    serve::StatBody stat;
    util::ByteWriter w;
    stat.encode(w);
    ASSERT_TRUE(serve::writeFrame(fd, serve::MsgType::Stat, w.bytes()));
    serve::Frame reply;
    ASSERT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Ok);
    EXPECT_EQ(reply.type, serve::MsgType::Error);
    // ... and the server hangs up afterwards.
    EXPECT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Eof);
    ::close(fd);
}

TEST(ServeServer, BadVersionRejected)
{
    ServerFixture fixture;
    const int fd = rawConnect(fixture.server.port());
    serve::HelloBody hello;
    hello.version = serve::kVersion + 17;
    util::ByteWriter w;
    hello.encode(w);
    ASSERT_TRUE(
        serve::writeFrame(fd, serve::MsgType::Hello, w.bytes()));
    serve::Frame reply;
    ASSERT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Ok);
    ASSERT_EQ(reply.type, serve::MsgType::Error);
    serve::ErrorBody body;
    util::ByteReader r(reply.body.data(), reply.body.size());
    ASSERT_TRUE(body.decode(r));
    EXPECT_EQ(body.code, serve::ErrorCode::BadVersion);
    ::close(fd);
}

TEST(ServeServer, OversizedFrameRejectedWithoutCrashing)
{
    ServerFixture fixture;
    const int fd = rawConnect(fixture.server.port());
    // A length prefix far beyond the server's command limit; the body
    // never follows. The server must refuse up front rather than try
    // to buffer it.
    const std::uint32_t huge = 64u * 1024 * 1024;
    std::uint8_t prefix[4];
    for (int i = 0; i < 4; ++i)
        prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
    ASSERT_EQ(::send(fd, prefix, sizeof(prefix), 0),
              static_cast<ssize_t>(sizeof(prefix)));
    serve::Frame reply;
    ASSERT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Ok);
    EXPECT_EQ(reply.type, serve::MsgType::Error);
    EXPECT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Eof);
    ::close(fd);

    // The server is still alive and serves the next client.
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
}

TEST(ServeServer, TornFrameRejected)
{
    ServerFixture fixture;
    const int fd = rawConnect(fixture.server.port());
    // A valid length prefix announcing 100 bytes, then hang up after 3:
    // the handler must treat the truncation as an error, not data.
    const std::uint32_t length = 100;
    std::uint8_t bytes[7];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<std::uint8_t>(length >> (8 * i));
    bytes[4] = bytes[5] = bytes[6] = 0x5a;
    ASSERT_EQ(::send(fd, bytes, sizeof(bytes), 0),
              static_cast<ssize_t>(sizeof(bytes)));
    ::close(fd);

    // Server survives to serve another connection.
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
}

TEST(ServeServer, IdleConnectionReapedByTimeout)
{
    serve::ServerOptions options;
    options.readTimeoutMs = 200;
    ServerFixture fixture(options);
    const int fd = rawConnect(fixture.server.port());
    serve::HelloBody hello;
    util::ByteWriter w;
    hello.encode(w);
    ASSERT_TRUE(
        serve::writeFrame(fd, serve::MsgType::Hello, w.bytes()));
    serve::Frame reply;
    ASSERT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Ok);
    ASSERT_EQ(reply.type, serve::MsgType::HelloOk);

    // Go silent. The server's receive timeout fires and it hangs up:
    // a blocking read on our side observes EOF.
    std::uint8_t byte;
    const ssize_t n = ::recv(fd, &byte, 1, 0);
    EXPECT_EQ(n, 0) << "expected EOF from the reaped connection";
    ::close(fd);
    fixture.server.waitForConnections(1);
    EXPECT_EQ(fixture.server.connectionsActive(), 0u);
}

TEST(ServeServer, ClassifyAcceptErrorsSkipsTransientsAndBacksOffOnExhaustion)
{
    using serve::AcceptAction;
    using serve::classifyAcceptError;
    // Per-connection hiccups: skip and accept the next one.
    EXPECT_EQ(classifyAcceptError(EINTR), AcceptAction::Skip);
    EXPECT_EQ(classifyAcceptError(ECONNABORTED), AcceptAction::Skip);
    EXPECT_EQ(classifyAcceptError(EAGAIN), AcceptAction::Skip);
    EXPECT_EQ(classifyAcceptError(EWOULDBLOCK), AcceptAction::Skip);
    // Resource exhaustion: pause, back off, retry — never exit.
    EXPECT_EQ(classifyAcceptError(EMFILE), AcceptAction::Backoff);
    EXPECT_EQ(classifyAcceptError(ENFILE), AcceptAction::Backoff);
    EXPECT_EQ(classifyAcceptError(ENOBUFS), AcceptAction::Backoff);
    EXPECT_EQ(classifyAcceptError(ENOMEM), AcceptAction::Backoff);
    // The unknown is treated like exhaustion, not like stop().
    EXPECT_EQ(classifyAcceptError(EIO), AcceptAction::Backoff);
}

/**
 * Drive accept(2) into EMFILE with RLIMIT_NOFILE and verify the
 * listener survives: the PR 5 loop exited on the first non-EINTR
 * accept error, silently killing the server.
 */
TEST(ServeServer, ListenerSurvivesFdExhaustion)
{
    ServerFixture fixture;

    // The client socket is created BEFORE the squeeze, while fds are
    // plentiful — but connected only after, so the server's accept()
    // of it runs with an exhausted fd table.
    const int starver = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(starver, 0);

    struct rlimit saved;
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
    // Find the next free fd number and clamp the table right there,
    // so the server-side accept() has no fd to give out.
    const int probe = ::dup(0);
    ASSERT_GE(probe, 0);
    ::close(probe);
    struct rlimit squeezed = saved;
    squeezed.rlim_cur = static_cast<rlim_t>(probe);
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &squeezed), 0);

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fixture.server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    // connect() needs no new fd client-side; the kernel finishes the
    // TCP handshake and the server's accept() fails with EMFILE.
    // Wait for the error counter rather than sleeping a guess.
    ASSERT_EQ(::connect(starver,
                        reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (fixture.server.acceptErrors() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
    EXPECT_GE(fixture.server.acceptErrors(), 1u);

    // With the limit restored, the backoff expires and the pending
    // connection is finally accepted and served.
    serve::HelloBody hello;
    util::ByteWriter w;
    hello.encode(w);
    ASSERT_TRUE(
        serve::writeFrame(starver, serve::MsgType::Hello, w.bytes()));
    serve::Frame reply;
    ASSERT_EQ(serve::readFrame(starver, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Ok);
    EXPECT_EQ(reply.type, serve::MsgType::HelloOk);
    ::close(starver);

    // And brand-new connections work too.
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
}

TEST(ServeServer, ServerStatsQueryReturnsLiveCounters)
{
    ServerFixture fixture;
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    // Stream a little first so the store/session counters are warm.
    serve::RemoteSession session;
    ASSERT_TRUE(client.open("p.mkp", 1, session, &error)) << error;
    std::vector<mem::Request> out;
    ASSERT_TRUE(client.next(session, out, 32, &error)) << error;

    serve::ServerStatsBody stats;
    ASSERT_TRUE(client.serverStats(stats, &error)) << error;
    ASSERT_FALSE(stats.entries.empty());

    std::map<std::string, std::int64_t> byName;
    for (const auto &entry : stats.entries) {
        // Entries arrive sorted and unique.
        EXPECT_TRUE(byName.empty() ||
                    byName.rbegin()->first < entry.name)
            << entry.name;
        byName[entry.name] = entry.value;
    }
    // The authoritative counters are served with telemetry off.
    ASSERT_TRUE(byName.count("serve.connections_accepted"));
    EXPECT_GE(byName["serve.connections_accepted"], 1);
    ASSERT_TRUE(byName.count("serve.connections_active"));
    EXPECT_GE(byName["serve.connections_active"], 1);
    // insert() makes the profile resident up front: opening it is a
    // store hit.
    ASSERT_TRUE(byName.count("store.hits"));
    EXPECT_GE(byName["store.hits"], 1);
    ASSERT_TRUE(byName.count("store.resident_profiles"));
    EXPECT_EQ(byName["store.resident_profiles"], 1);
    ASSERT_TRUE(byName.count("recorder.enabled"));
    EXPECT_EQ(byName["recorder.enabled"], 0); // none attached
    EXPECT_TRUE(byName.count("serve.completions_dropped"));

    ASSERT_TRUE(client.close(session, &error)) << error;
}

/**
 * Kill a connection (RST) while its open is still loading on the
 * pool: the completion lands after the connection is gone and must be
 * counted as dropped, not lost silently (the stop()/mid-dispatch
 * satellite of this PR).
 */
TEST(ServeServer, CompletionDroppedWhenConnectionDiesMidTask)
{
    configurePoolFromEnv();
    std::promise<void> entered;
    std::promise<void> release;
    std::shared_future<void> release_future =
        release.get_future().share();

    serve::ProfileStore store;
    std::atomic<bool> signalled{false};
    store.registerLoader(
        "slow.mkp",
        [&](serve::StoredProfile &out, std::string *) {
            if (!signalled.exchange(true))
                entered.set_value();
            release_future.wait();
            out.profile = makeProfile(64);
            out.totalRequests = 64;
            return true;
        });
    serve::ServerOptions options;
    options.port = 0;
    serve::StreamServer server(store, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const int fd = rawConnect(server.port());
    serve::HelloBody hello;
    util::ByteWriter w;
    hello.encode(w);
    ASSERT_TRUE(
        serve::writeFrame(fd, serve::MsgType::Hello, w.bytes()));
    serve::Frame reply;
    ASSERT_EQ(serve::readFrame(fd, reply, serve::kMaxFrameBytes),
              serve::FrameResult::Ok);
    ASSERT_EQ(reply.type, serve::MsgType::HelloOk);

    serve::OpenChannelBody open;
    open.channel = 1;
    open.id = "slow.mkp";
    util::ByteWriter ow;
    open.encode(ow);
    ASSERT_TRUE(
        serve::writeFrame(fd, serve::MsgType::OpenChannel, ow.bytes()));

    // Wait until the open is parked inside the loader, then RST the
    // connection out from under it.
    entered.get_future().wait();
    struct linger hard = {1, 0};
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard,
                           sizeof(hard)),
              0);
    ::close(fd);

    // The loop reaps the connection first (nothing blocks it), the
    // loader finishes second, and its completion has nowhere to go.
    server.waitForConnections(1);
    release.set_value();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.completionsDropped() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.stop();
    EXPECT_GE(server.completionsDropped(), 1u);
}

TEST(ServeServer, GracefulStopDrainsInFlightSessions)
{
    ServerFixture fixture;
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", fixture.server.port(), {},
                               &error))
        << error;
    serve::RemoteSession session;
    ASSERT_TRUE(client.open("p.mkp", 1, session, &error)) << error;
    std::vector<mem::Request> out;
    ASSERT_TRUE(client.next(session, out, 50, &error)) << error;
    EXPECT_EQ(out.size(), 50u);

    // stop() must shut the connection down and return with no handler
    // active — even though the client never said Close.
    fixture.server.stop();
    EXPECT_EQ(fixture.server.connectionsActive(), 0u);
    EXPECT_EQ(fixture.server.connectionsCompleted(), 1u);

    // The client now sees EOF, not a hang.
    EXPECT_FALSE(client.next(session, out, 50, &error));
    client.disconnect();
}

} // namespace
