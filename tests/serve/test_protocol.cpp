#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/request.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::serve;

TEST(Protocol, PackFrameLayout)
{
    const std::vector<std::uint8_t> body = {0xaa, 0xbb, 0xcc};
    const auto bytes = packFrame(MsgType::Stat, body);
    // u32 LE length (type byte + body) + type + body.
    ASSERT_EQ(bytes.size(), 4u + 1u + body.size());
    const std::uint32_t length = bytes[0] |
                                 (std::uint32_t{bytes[1]} << 8) |
                                 (std::uint32_t{bytes[2]} << 16) |
                                 (std::uint32_t{bytes[3]} << 24);
    EXPECT_EQ(length, 1u + body.size());
    EXPECT_EQ(bytes[4], static_cast<std::uint8_t>(MsgType::Stat));
    EXPECT_EQ(std::memcmp(bytes.data() + 5, body.data(), body.size()),
              0);
}

template <typename Body>
Body
roundTrip(const Body &in, bool *ok = nullptr)
{
    util::ByteWriter w;
    in.encode(w);
    util::ByteReader r(w.bytes().data(), w.bytes().size());
    Body out;
    const bool decoded = out.decode(r);
    if (ok != nullptr)
        *ok = decoded;
    else
        EXPECT_TRUE(decoded);
    return out;
}

TEST(Protocol, BodyRoundTrips)
{
    HelloBody hello;
    const HelloBody hello2 = roundTrip(hello);
    EXPECT_EQ(hello2.magic, kMagic);
    EXPECT_EQ(hello2.version, kVersion);

    OpenProfileBody open;
    open.id = "hevc1.mkp";
    open.seed = 0xdeadbeef12345678ull;
    const OpenProfileBody open2 = roundTrip(open);
    EXPECT_EQ(open2.id, open.id);
    EXPECT_EQ(open2.seed, open.seed);

    OpenedBody opened;
    opened.session = 3;
    opened.name = "HEVC1";
    opened.device = "VPU";
    opened.leaves = 1234;
    opened.total = 1u << 20;
    const OpenedBody opened2 = roundTrip(opened);
    EXPECT_EQ(opened2.session, opened.session);
    EXPECT_EQ(opened2.name, opened.name);
    EXPECT_EQ(opened2.device, opened.device);
    EXPECT_EQ(opened2.leaves, opened.leaves);
    EXPECT_EQ(opened2.total, opened.total);

    StatsBody stats;
    stats.session = 9;
    stats.emitted = 77;
    stats.total = 100;
    stats.buffered = 5;
    const StatsBody stats2 = roundTrip(stats);
    EXPECT_EQ(stats2.session, stats.session);
    EXPECT_EQ(stats2.emitted, stats.emitted);
    EXPECT_EQ(stats2.total, stats.total);
    EXPECT_EQ(stats2.buffered, stats.buffered);

    ErrorBody error;
    error.code = ErrorCode::UnknownProfile;
    error.message = "no such profile";
    const ErrorBody error2 = roundTrip(error);
    EXPECT_EQ(error2.code, error.code);
    EXPECT_EQ(error2.message, error.message);
}

TEST(Protocol, DecodersRejectTrailingGarbage)
{
    StatBody stat;
    stat.session = 1;
    util::ByteWriter w;
    stat.encode(w);
    auto bytes = w.bytes();
    bytes.push_back(0x00); // one byte of trailing junk
    util::ByteReader r(bytes.data(), bytes.size());
    StatBody out;
    EXPECT_FALSE(out.decode(r));
}

TEST(Protocol, DecodersRejectTruncation)
{
    OpenProfileBody open;
    open.id = "x.mkp";
    open.seed = 1234567;
    util::ByteWriter w;
    open.encode(w);
    auto bytes = w.bytes();
    bytes.pop_back();
    util::ByteReader r(bytes.data(), bytes.size());
    OpenProfileBody out;
    EXPECT_FALSE(out.decode(r));
}

TEST(Protocol, ChunkCarriesCodecStateAcrossFrames)
{
    util::Rng rng(3);
    std::vector<mem::Request> requests;
    mem::Tick tick = 0;
    for (int i = 0; i < 100; ++i) {
        tick += rng.below(50);
        requests.push_back(mem::Request{
            tick, 0x4000 + (rng.below(1 << 20) & ~mem::Addr{3}),
            static_cast<std::uint32_t>(rng.chance(0.5) ? 64 : 128),
            rng.chance(0.5) ? mem::Op::Write : mem::Op::Read});
    }

    // Encode as three chunk frames sharing one sender-side state.
    mem::RequestCodecState encode_state;
    std::vector<std::vector<std::uint8_t>> frames;
    std::size_t offset = 0;
    for (const std::size_t count : {33u, 33u, 34u}) {
        ChunkBody chunk;
        chunk.session = 1;
        chunk.firstSeq = offset;
        chunk.count = count;
        chunk.done = offset + count == requests.size();
        util::ByteWriter w;
        chunk.encode(w, requests.data() + offset, encode_state);
        frames.push_back(w.bytes());
        offset += count;
    }

    // Decode with one receiver-side state; the concatenation must be
    // exactly the original sequence.
    mem::RequestCodecState decode_state;
    std::vector<mem::Request> decoded;
    std::size_t expect_seq = 0;
    for (const auto &frame : frames) {
        util::ByteReader r(frame.data(), frame.size());
        ChunkBody chunk;
        ASSERT_TRUE(chunk.decode(r, decoded, decode_state));
        EXPECT_EQ(chunk.firstSeq, expect_seq);
        expect_seq += chunk.count;
    }
    ASSERT_EQ(decoded.size(), requests.size());
    for (std::size_t i = 0; i < decoded.size(); ++i)
        ASSERT_EQ(decoded[i], requests[i]) << "at index " << i;

    // A fresh decoder state on the second frame must NOT reproduce the
    // stream (the carry is real, not incidental).
    mem::RequestCodecState fresh;
    std::vector<mem::Request> second;
    util::ByteReader r(frames[1].data(), frames[1].size());
    ChunkBody chunk;
    ASSERT_TRUE(chunk.decode(r, second, fresh));
    EXPECT_NE(second.front(), requests[33]);
}

TEST(Protocol, ChunkRejectsImplausibleCount)
{
    // A malicious header claiming 1M records in a near-empty body
    // must fail fast instead of looping on truncated decodes.
    util::ByteWriter w;
    w.putVarint(1);        // session
    w.putVarint(0);        // firstSeq
    w.putVarint(1u << 20); // count (lie)
    w.putByte(0);          // done
    util::ByteReader r(w.bytes().data(), w.bytes().size());
    ChunkBody chunk;
    std::vector<mem::Request> out;
    mem::RequestCodecState state;
    EXPECT_FALSE(chunk.decode(r, out, state));
}

} // namespace
