#include "core/markov.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "core/mcc.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

std::map<std::int64_t, std::uint64_t>
multiset(const std::vector<std::int64_t> &values)
{
    std::map<std::int64_t, std::uint64_t> m;
    for (const auto v : values)
        ++m[v];
    return m;
}

std::vector<std::int64_t>
generateAll(const MarkovChain &chain, std::uint64_t seed)
{
    util::Rng rng(seed);
    StrictConvergenceSampler sampler(chain, rng);
    std::vector<std::int64_t> out;
    while (!sampler.exhausted())
        out.push_back(sampler.next());
    return out;
}

TEST(MarkovChain, StatesInFirstAppearanceOrder)
{
    MarkovChain chain({5, 3, 5, 7});
    ASSERT_EQ(chain.numStates(), 3u);
    EXPECT_EQ(chain.stateValue(0), 5);
    EXPECT_EQ(chain.stateValue(1), 3);
    EXPECT_EQ(chain.stateValue(2), 7);
    EXPECT_EQ(chain.initialState(), 0u);
    EXPECT_EQ(chain.sequenceLength(), 4u);
}

TEST(MarkovChain, ValueCounts)
{
    MarkovChain chain({1, 1, 2, 1});
    EXPECT_EQ(chain.valueCounts()[chain.stateIndex(1)], 3u);
    EXPECT_EQ(chain.valueCounts()[chain.stateIndex(2)], 1u);
}

TEST(MarkovChain, TransitionProbabilities)
{
    // From 64: 8 times to 64, 1 time to -264 (Table I flavour).
    std::vector<std::int64_t> seq;
    for (int i = 0; i < 9; ++i)
        seq.push_back(64);
    seq.push_back(-264);
    seq.push_back(64);
    MarkovChain chain(seq);
    const std::size_t s64 = chain.stateIndex(64);
    const std::size_t sneg = chain.stateIndex(-264);
    EXPECT_NEAR(chain.transitionProbability(s64, s64), 8.0 / 9.0, 1e-12);
    EXPECT_NEAR(chain.transitionProbability(s64, sneg), 1.0 / 9.0,
                1e-12);
    EXPECT_DOUBLE_EQ(chain.transitionProbability(sneg, s64), 1.0);
}

TEST(MarkovChain, UnknownValueIndex)
{
    MarkovChain chain({1, 2});
    EXPECT_EQ(chain.stateIndex(99), chain.numStates());
}

TEST(StrictConvergence, FirstValueIsInitialState)
{
    MarkovChain chain({42, 7, 42});
    util::Rng rng(1);
    StrictConvergenceSampler sampler(chain, rng);
    EXPECT_EQ(sampler.next(), 42);
}

TEST(StrictConvergence, DeterministicSequenceReproducedExactly)
{
    // A period-2 sequence has deterministic transitions.
    std::vector<std::int64_t> seq;
    for (int i = 0; i < 50; ++i) {
        seq.push_back(10);
        seq.push_back(20);
    }
    MarkovChain chain(seq);
    EXPECT_EQ(generateAll(chain, 3), seq);
}

TEST(StrictConvergence, TableIExample)
{
    // Paper Table I (1 temporal partition): sizes
    // 128 64 64 64 64 64 128 64 64 64 64 64 — strict convergence must
    // produce exactly two 128s and ten 64s.
    std::vector<std::int64_t> seq = {128, 64, 64, 64, 64, 64,
                                     128, 64, 64, 64, 64, 64};
    MarkovChain chain(seq);
    for (std::uint64_t s = 0; s < 20; ++s) {
        const auto out = generateAll(chain, s);
        EXPECT_EQ(multiset(out), multiset(seq)) << "seed " << s;
        EXPECT_EQ(out.front(), 128);
    }
}

TEST(StrictConvergence, MultisetPreservedOnRandomSequences)
{
    util::Rng source(77);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<std::int64_t> seq;
        const std::size_t n = 5 + source.below(200);
        for (std::size_t i = 0; i < n; ++i)
            seq.push_back(source.between(-3, 3));
        MarkovChain chain(seq);
        const auto out = generateAll(chain, 1000 + trial);
        EXPECT_EQ(out.size(), seq.size());
        EXPECT_EQ(multiset(out), multiset(seq)) << "trial " << trial;
    }
}

TEST(StrictConvergence, SingleValueSequence)
{
    MarkovChain chain({std::vector<std::int64_t>{9}});
    const auto out = generateAll(chain, 5);
    EXPECT_EQ(out, std::vector<std::int64_t>{9});
}

TEST(StrictConvergence, TransitionCountsConsumed)
{
    // 1 -> 2 occurs exactly once; generation can never use it twice.
    std::vector<std::int64_t> seq = {1, 2, 1, 1};
    MarkovChain chain(seq);
    for (std::uint64_t s = 0; s < 50; ++s) {
        const auto out = generateAll(chain, s);
        EXPECT_EQ(multiset(out), multiset(seq));
    }
}

TEST(MarkovChain, FromPartsRoundTrip)
{
    MarkovChain original({3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5});
    std::vector<std::int64_t> states;
    for (std::size_t i = 0; i < original.numStates(); ++i)
        states.push_back(original.stateValue(i));
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        transitions;
    for (std::size_t i = 0; i < original.numStates(); ++i) {
        const TransitionView row = original.transitions(i);
        transitions.emplace_back(row.begin(), row.end());
    }

    const MarkovChain rebuilt = MarkovChain::fromParts(
        states, original.initialState(), original.valueCounts(),
        transitions);
    EXPECT_EQ(rebuilt.numStates(), original.numStates());
    EXPECT_EQ(rebuilt.sequenceLength(), original.sequenceLength());
    EXPECT_EQ(rebuilt.initialState(), original.initialState());
    // Generation from the rebuilt chain preserves the multiset too.
    const auto out = generateAll(rebuilt, 9);
    EXPECT_EQ(multiset(out),
              multiset({3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}));
}

TEST(StrictConvergence, SameSeedSameOutput)
{
    std::vector<std::int64_t> seq = {1, 2, 3, 1, 2, 3, 2, 1, 3, 3};
    MarkovChain chain(seq);
    EXPECT_EQ(generateAll(chain, 42), generateAll(chain, 42));
}

TEST(MarkovChain, ArenaCopyIsDeep)
{
    // The CSR transition storage lives in a per-chain arena; copies
    // must rebuild it rather than alias the source (ASan would flag a
    // shallow copy once the original dies).
    std::vector<std::int64_t> seq = {7, 8, 7, 9, 8, 7, 7, 9};
    auto original = std::make_unique<MarkovChain>(seq);
    MarkovChain copy = *original;
    MarkovChain assigned;
    assigned = *original;
    original.reset();

    EXPECT_EQ(copy.numStates(), 3u);
    EXPECT_EQ(assigned.numStates(), 3u);
    EXPECT_EQ(multiset(generateAll(copy, 1)), multiset(seq));
    EXPECT_EQ(multiset(generateAll(assigned, 2)), multiset(seq));
}

TEST(MarkovChain, BuilderMatchesEagerConstruction)
{
    const std::vector<std::int64_t> seq = {4, 4, 2, 4, 2, 2, 8, 4, 8};
    MarkovChainBuilder builder;
    for (const std::int64_t v : seq)
        builder.add(v);
    EXPECT_EQ(builder.length(), seq.size());
    const MarkovChain incremental = builder.finish();
    const MarkovChain eager(seq);

    ASSERT_EQ(incremental.numStates(), eager.numStates());
    EXPECT_EQ(incremental.initialState(), eager.initialState());
    EXPECT_EQ(incremental.valueCounts(), eager.valueCounts());
    for (std::size_t s = 0; s < eager.numStates(); ++s) {
        EXPECT_EQ(incremental.stateValue(s), eager.stateValue(s));
        const TransitionView a = incremental.transitions(s);
        const TransitionView b = eager.transitions(s);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t k = 0; k < a.size(); ++k)
            EXPECT_EQ(a[k], b[k]) << "state " << s << " slot " << k;
    }
    // The builder resets for reuse.
    builder.add(1);
    builder.add(1);
    const MarkovChain second = builder.finish();
    EXPECT_EQ(second.numStates(), 1u);
    EXPECT_EQ(second.sequenceLength(), 2u);
}

TEST(MarkovChain, ArenaRoundTripThroughEncodeDecode)
{
    // fromParts -> encodePayload -> decodePayload must reproduce the
    // CSR layout exactly (this is the profile wire path).
    std::vector<std::int64_t> seq = {5, 6, 5, 7, 6, 5, 5, 7, 6};
    const MarkovModel model{MarkovChain(seq)};
    util::ByteWriter writer;
    model.encodePayload(writer);
    util::ByteReader reader(writer.bytes());
    const FeatureModelPtr decoded = MarkovModel::decodePayload(reader);
    ASSERT_NE(decoded, nullptr);
    ASSERT_EQ(decoded->tag(), MarkovModel::kTag);
    const MarkovChain &rebuilt =
        static_cast<const MarkovModel &>(*decoded).chain();

    const MarkovChain &chain = model.chain();
    ASSERT_EQ(rebuilt.numStates(), chain.numStates());
    EXPECT_EQ(rebuilt.initialState(), chain.initialState());
    EXPECT_EQ(rebuilt.valueCounts(), chain.valueCounts());
    EXPECT_EQ(rebuilt.transitionCount(), chain.transitionCount());
    for (std::size_t s = 0; s < chain.numStates(); ++s) {
        EXPECT_EQ(rebuilt.stateValue(s), chain.stateValue(s));
        EXPECT_EQ(rebuilt.transitionOffset(s), chain.transitionOffset(s));
        const TransitionView a = rebuilt.transitions(s);
        const TransitionView b = chain.transitions(s);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t k = 0; k < a.size(); ++k)
            EXPECT_EQ(a[k], b[k]);
    }
    // And re-encoding produces identical bytes.
    util::ByteWriter again;
    decoded->encodePayload(again);
    EXPECT_EQ(again.bytes(), writer.bytes());
}

} // namespace
