#include "core/mcc.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/profile.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

TEST(BuildMcc, EmptySequenceGivesNull)
{
    EXPECT_EQ(buildMcc({}), nullptr);
}

TEST(BuildMcc, ConstantSequenceGivesConstant)
{
    const auto model = buildMcc({7, 7, 7, 7});
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->tag(), ConstantModel::kTag);
    EXPECT_EQ(model->sequenceLength(), 4u);
}

TEST(BuildMcc, SingleValueGivesConstant)
{
    const auto model = buildMcc({std::vector<std::int64_t>{-3}});
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->tag(), ConstantModel::kTag);
}

TEST(BuildMcc, VaryingSequenceGivesMarkov)
{
    const auto model = buildMcc({1, 2, 1, 2});
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->tag(), MarkovModel::kTag);
}

TEST(ConstantModel, SamplerRepeatsValue)
{
    ConstantModel model(-64, 10);
    util::Rng rng(1);
    const auto sampler = model.makeSampler(rng);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sampler->next(), -64);
}

TEST(MarkovModel, SamplerPreservesMultiset)
{
    std::vector<std::int64_t> seq = {5, 6, 5, 6, 6, 5, 7};
    const auto model = buildMcc(seq);
    util::Rng rng(4);
    const auto sampler = model->makeSampler(rng);
    std::map<std::int64_t, int> counts;
    for (std::size_t i = 0; i < seq.size(); ++i)
        ++counts[sampler->next()];
    EXPECT_EQ(counts[5], 3);
    EXPECT_EQ(counts[6], 3);
    EXPECT_EQ(counts[7], 1);
}

TEST(FeatureModelCodec, ConstantRoundTrip)
{
    ConstantModel model(123456789, 42);
    util::ByteWriter w;
    FeatureModelPtr ptr = std::make_unique<ConstantModel>(model);
    encodeFeatureModel(w, ptr);

    util::ByteReader r(w.bytes());
    bool ok = true;
    const auto decoded = decodeFeatureModel(r, ok);
    ASSERT_TRUE(ok);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->tag(), ConstantModel::kTag);
    EXPECT_EQ(decoded->sequenceLength(), 42u);
    EXPECT_EQ(static_cast<const ConstantModel &>(*decoded).value(),
              123456789);
}

TEST(FeatureModelCodec, MarkovRoundTrip)
{
    std::vector<std::int64_t> seq = {64, 64, -264, 128, 64, 64, 128};
    FeatureModelPtr model = buildMcc(seq);
    util::ByteWriter w;
    encodeFeatureModel(w, model);

    util::ByteReader r(w.bytes());
    bool ok = true;
    const auto decoded = decodeFeatureModel(r, ok);
    ASSERT_TRUE(ok);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->tag(), MarkovModel::kTag);
    EXPECT_EQ(decoded->sequenceLength(), seq.size());

    // The decoded model generates the same multiset.
    util::Rng rng(8);
    const auto sampler = decoded->makeSampler(rng);
    std::map<std::int64_t, int> counts;
    for (std::size_t i = 0; i < seq.size(); ++i)
        ++counts[sampler->next()];
    EXPECT_EQ(counts[64], 4);
    EXPECT_EQ(counts[-264], 1);
    EXPECT_EQ(counts[128], 2);
}

TEST(FeatureModelCodec, NullRoundTrip)
{
    util::ByteWriter w;
    encodeFeatureModel(w, nullptr);
    util::ByteReader r(w.bytes());
    bool ok = true;
    EXPECT_EQ(decodeFeatureModel(r, ok), nullptr);
    EXPECT_TRUE(ok);
}

TEST(FeatureModelCodec, UnknownTagFails)
{
    util::ByteWriter w;
    w.putByte(200); // unregistered tag
    util::ByteReader r(w.bytes());
    bool ok = true;
    EXPECT_EQ(decodeFeatureModel(r, ok), nullptr);
    EXPECT_FALSE(ok);
}

TEST(FeatureModelCodec, TruncatedMarkovFails)
{
    FeatureModelPtr model = buildMcc({1, 2, 3, 1, 2});
    util::ByteWriter w;
    encodeFeatureModel(w, model);
    auto bytes = w.bytes();
    bytes.resize(bytes.size() - 2);
    util::ByteReader r(bytes);
    bool ok = true;
    (void)decodeFeatureModel(r, ok);
    EXPECT_FALSE(ok);
}

} // namespace
