#include "core/model_generator.hpp"

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

Leaf
makeLeaf(std::initializer_list<mem::Request> requests)
{
    Leaf leaf;
    leaf.requests = requests;
    leaf.addrLo = leaf.requests.front().addr;
    leaf.addrHi = leaf.requests.front().end();
    for (const auto &r : leaf.requests) {
        leaf.addrLo = std::min(leaf.addrLo, r.addr);
        leaf.addrHi = std::max(leaf.addrHi, r.end());
    }
    return leaf;
}

TEST(ModelLeaf, MetadataCaptured)
{
    const Leaf leaf = makeLeaf({
        {100, 0x2000, 64, mem::Op::Read},
        {120, 0x2040, 64, mem::Op::Read},
    });
    const LeafModel model = modelLeaf(leaf);
    EXPECT_EQ(model.startTime, 100u);
    EXPECT_EQ(model.startAddr, 0x2000u);
    EXPECT_EQ(model.addrLo, 0x2000u);
    EXPECT_EQ(model.addrHi, 0x2080u);
    EXPECT_EQ(model.count, 2u);
}

TEST(ModelLeaf, ConstantFeaturesBecomeConstants)
{
    const Leaf leaf = makeLeaf({
        {0, 0x0, 64, mem::Op::Read},
        {10, 0x40, 64, mem::Op::Read},
        {20, 0x80, 64, mem::Op::Read},
    });
    const LeafModel model = modelLeaf(leaf);
    EXPECT_EQ(model.deltaTime->tag(), ConstantModel::kTag);
    EXPECT_EQ(model.stride->tag(), ConstantModel::kTag);
    EXPECT_EQ(model.op->tag(), ConstantModel::kTag);
    EXPECT_EQ(model.size->tag(), ConstantModel::kTag);
}

TEST(ModelLeaf, VaryingFeaturesBecomeMarkov)
{
    const Leaf leaf = makeLeaf({
        {0, 0x0, 64, mem::Op::Read},
        {10, 0x40, 128, mem::Op::Write},
        {15, 0x20, 64, mem::Op::Read},
    });
    const LeafModel model = modelLeaf(leaf);
    EXPECT_EQ(model.deltaTime->tag(), MarkovModel::kTag);
    EXPECT_EQ(model.stride->tag(), MarkovModel::kTag);
    EXPECT_EQ(model.op->tag(), MarkovModel::kTag);
    EXPECT_EQ(model.size->tag(), MarkovModel::kTag);
}

TEST(ModelLeaf, SingleRequestHasNoDeltaModels)
{
    const Leaf leaf = makeLeaf({{5, 0x100, 32, mem::Op::Write}});
    const LeafModel model = modelLeaf(leaf);
    EXPECT_EQ(model.deltaTime, nullptr);
    EXPECT_EQ(model.stride, nullptr);
    ASSERT_NE(model.op, nullptr);
    ASSERT_NE(model.size, nullptr);
    EXPECT_EQ(model.count, 1u);
}

TEST(ModelLeaf, HooksCanOverrideFeatures)
{
    LeafModelerHooks hooks;
    int op_calls = 0;
    hooks.op = [&](const std::vector<std::int64_t> &values) {
        ++op_calls;
        return buildMcc(values);
    };
    const Leaf leaf = makeLeaf({
        {0, 0x0, 64, mem::Op::Read},
        {1, 0x40, 64, mem::Op::Write},
    });
    (void)modelLeaf(leaf, hooks);
    EXPECT_EQ(op_calls, 1);
}

TEST(BuildProfile, CarriesTraceIdentity)
{
    mem::Trace trace("HEVC1", "VPU");
    trace.add(0, 0x1000, 64, mem::Op::Read);
    trace.add(5, 0x1040, 64, mem::Op::Read);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(100));
    EXPECT_EQ(p.name, "HEVC1");
    EXPECT_EQ(p.device, "VPU");
    EXPECT_EQ(p.config, PartitionConfig::twoLevelTs(100));
}

TEST(BuildProfile, LeafCountsSumToTrace)
{
    mem::Trace trace;
    util::Rng rng(3);
    mem::Tick tick = 0;
    for (int i = 0; i < 3000; ++i) {
        tick += rng.below(100);
        trace.add(tick, rng.below(1 << 20) & ~mem::Addr{63}, 64,
                  rng.chance(0.4) ? mem::Op::Write : mem::Op::Read);
    }
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(5000));
    EXPECT_EQ(p.totalRequests(), trace.size());
    EXPECT_GT(p.leaves.size(), 1u);
}

TEST(BuildProfile, EmptyTraceGivesEmptyProfile)
{
    const Profile p =
        buildProfile(mem::Trace{}, PartitionConfig::twoLevelTs());
    EXPECT_TRUE(p.leaves.empty());
}

TEST(BuildProfile, ParallelFittingIsBitIdentical)
{
    // Leaves are fitted concurrently but collected in leaf order, so
    // the encoded profile must match the sequential path byte for
    // byte at every thread count.
    mem::Trace trace;
    util::Rng rng(17);
    mem::Tick tick = 0;
    for (int i = 0; i < 4000; ++i) {
        tick += rng.below(60);
        trace.add(tick, rng.below(1 << 21) & ~mem::Addr{63},
                  rng.chance(0.5) ? 64 : 128,
                  rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    const auto config = PartitionConfig::twoLevelTs(2000);

    const Profile sequential =
        buildProfile(trace, config, LeafModelerHooks{}, 1);
    ASSERT_GT(sequential.leaves.size(), 4u);
    const auto reference = sequential.encode();

    for (const unsigned threads : {0u, 2u, 8u}) {
        const Profile parallel =
            buildProfile(trace, config, LeafModelerHooks{}, threads);
        EXPECT_EQ(parallel.encode(), reference)
            << "threads=" << threads;
    }
}

TEST(BuildProfile, LeafStartTimesMatchFirstRequests)
{
    mem::Trace trace;
    trace.add(100, 0x1000, 64, mem::Op::Read);
    trace.add(200, 0x90000, 64, mem::Op::Read);
    trace.add(300, 0x1040, 64, mem::Op::Read);
    trace.add(400, 0x90040, 64, mem::Op::Read);
    const Profile p = buildProfile(
        trace, PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic,
                                 0}}});
    ASSERT_EQ(p.leaves.size(), 2u);
    EXPECT_EQ(p.leaves[0].startTime, 100u);
    EXPECT_EQ(p.leaves[1].startTime, 200u);
}

} // namespace
