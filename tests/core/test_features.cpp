#include "core/features.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace mocktails;
using namespace mocktails::core;

RequestSeq
sample()
{
    return {
        {100, 0x1000, 64, mem::Op::Read},
        {110, 0x1040, 64, mem::Op::Write},
        {110, 0x0fc0, 128, mem::Op::Read},
    };
}

TEST(Features, DeltaTimes)
{
    EXPECT_EQ(deltaTimes(sample()),
              (std::vector<std::int64_t>{10, 0}));
}

TEST(Features, Strides)
{
    EXPECT_EQ(strides(sample()),
              (std::vector<std::int64_t>{64, -128}));
}

TEST(Features, Operations)
{
    EXPECT_EQ(operations(sample()),
              (std::vector<std::int64_t>{0, 1, 0}));
}

TEST(Features, Sizes)
{
    EXPECT_EQ(sizes(sample()),
              (std::vector<std::int64_t>{64, 64, 128}));
}

TEST(Features, SingleRequestHasNoDeltas)
{
    RequestSeq one = {{5, 0x10, 4, mem::Op::Read}};
    EXPECT_TRUE(deltaTimes(one).empty());
    EXPECT_TRUE(strides(one).empty());
    EXPECT_EQ(operations(one).size(), 1u);
    EXPECT_EQ(sizes(one).size(), 1u);
}

TEST(Features, EmptySequence)
{
    RequestSeq none;
    EXPECT_TRUE(deltaTimes(none).empty());
    EXPECT_TRUE(strides(none).empty());
    EXPECT_TRUE(operations(none).empty());
    EXPECT_TRUE(sizes(none).empty());
}

TEST(Features, LargeAddressDifferences)
{
    RequestSeq seq = {
        {0, 0x100000000, 64, mem::Op::Read},
        {1, 0x0, 64, mem::Op::Read},
    };
    EXPECT_EQ(strides(seq),
              (std::vector<std::int64_t>{-0x100000000ll}));
}

} // namespace
