#include "core/summary.hpp"

#include <gtest/gtest.h>

#include "baselines/stm.hpp"
#include "core/model_generator.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

TEST(Summary, EmptyProfile)
{
    const ProfileSummary s = summarize(Profile{});
    EXPECT_EQ(s.leaves, 0u);
    EXPECT_EQ(s.requests, 0u);
    EXPECT_EQ(s.constantFraction(), 0.0);
}

TEST(Summary, PureLinearTraceIsAllConstants)
{
    mem::Trace trace;
    for (int i = 0; i < 100; ++i) {
        trace.add(static_cast<mem::Tick>(i * 10),
                  0x1000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Read);
    }
    const ProfileSummary s = summarize(buildProfile(
        trace, PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic,
                                 0}}}));
    EXPECT_EQ(s.leaves, 1u);
    EXPECT_EQ(s.requests, 100u);
    EXPECT_EQ(s.singletonLeaves, 0u);
    EXPECT_DOUBLE_EQ(s.constantFraction(), 1.0);
    EXPECT_EQ(s.deltaTime.constant, 1u);
    EXPECT_EQ(s.stride.constant, 1u);
    EXPECT_EQ(s.op.constant, 1u);
    EXPECT_EQ(s.size.constant, 1u);
    EXPECT_EQ(s.stride.markov, 0u);
}

TEST(Summary, IrregularTraceNeedsChains)
{
    mem::Trace trace;
    util::Rng rng(3);
    mem::Tick tick = 0;
    for (int i = 0; i < 500; ++i) {
        tick += 1 + rng.below(20);
        trace.add(tick, 0x1000 + (rng.below(4096) & ~mem::Addr{7}), 8,
                  rng.chance(0.5) ? mem::Op::Write : mem::Op::Read);
    }
    const ProfileSummary s = summarize(buildProfile(
        trace, PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic,
                                 0}}}));
    EXPECT_GT(s.stride.markov + s.stride.constant, 0u);
    EXPECT_GT(s.op.markov, 0u);
    EXPECT_GT(s.stride.markovStates, 0u);
    EXPECT_LT(s.constantFraction(), 1.0);
}

TEST(Summary, SingletonLeavesCounted)
{
    mem::Trace trace;
    trace.add(0, 0x1000, 64, mem::Op::Read);
    trace.add(10, 0x90000000, 64, mem::Op::Read); // far away: lonely
    trace.add(20, 0x1040, 64, mem::Op::Read);
    const ProfileSummary s = summarize(buildProfile(
        trace, PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic,
                                 0}}}));
    // The lonely request merges with... there is only one lonely, so
    // it forms a singleton leaf; its delta/stride models are absent.
    EXPECT_EQ(s.singletonLeaves, 1u);
    EXPECT_EQ(s.deltaTime.absent, 1u);
    EXPECT_EQ(s.stride.absent, 1u);
}

TEST(Summary, ForeignModelsCountedAsOther)
{
    mem::Trace trace;
    util::Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        trace.add(static_cast<mem::Tick>(i * 4),
                  0x1000 + (rng.below(2048) & ~mem::Addr{63}), 64,
                  rng.chance(0.5) ? mem::Op::Write : mem::Op::Read);
    }
    const ProfileSummary s = summarize(
        buildProfile(trace,
                     PartitionConfig{
                         {{PartitionLayer::Kind::SpatialDynamic, 0}}},
                     baselines::stmHooks()));
    EXPECT_GT(s.stride.other + s.op.other, 0u);
}

TEST(Summary, CompressedBytesMatchesEncoding)
{
    mem::Trace trace;
    for (int i = 0; i < 50; ++i)
        trace.add(static_cast<mem::Tick>(i), 0x40 * i, 64,
                  mem::Op::Read);
    const Profile profile =
        buildProfile(trace, PartitionConfig::twoLevelTs());
    EXPECT_EQ(summarize(profile).compressedBytes,
              profile.encodeCompressed().size());
}

} // namespace
