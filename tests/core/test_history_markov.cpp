#include "core/history_markov.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/profile.hpp"
#include "core/synthesis.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

std::map<std::int64_t, int>
multiset(const std::vector<std::int64_t> &values)
{
    std::map<std::int64_t, int> m;
    for (const auto v : values)
        ++m[v];
    return m;
}

std::vector<std::int64_t>
generate(const FeatureModel &model, std::uint64_t n,
         std::uint64_t seed)
{
    util::Rng rng(seed);
    const auto sampler = model.makeSampler(rng);
    std::vector<std::int64_t> out;
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(sampler->next());
    return out;
}

TEST(HistoryMarkov, MultisetPreserved)
{
    std::vector<std::int64_t> seq = {1, 2, 3, 1, 2, 3, 2, 1, 3,
                                     1, 1, 2};
    HistoryMarkovModel model(seq, 2);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const auto out = generate(model, seq.size(), seed);
        EXPECT_EQ(multiset(out),
                  (std::map<std::int64_t, int>(multiset(seq))))
            << "seed " << seed;
    }
}

TEST(HistoryMarkov, Order2CapturesWhatOrder1CanNot)
{
    // The sequence a a b a a b ...: after 'a' the next value depends
    // on the value before it (a->a->b, b->a->a). Order-2 reproduces
    // it exactly; order-1 sometimes deviates.
    std::vector<std::int64_t> seq;
    for (int i = 0; i < 40; ++i) {
        seq.push_back(7);
        seq.push_back(7);
        seq.push_back(9);
    }

    HistoryMarkovModel order2(seq, 2);
    bool order2_exact = true;
    for (std::uint64_t seed = 0; seed < 10; ++seed)
        order2_exact &= generate(order2, seq.size(), seed) == seq;
    EXPECT_TRUE(order2_exact);

    HistoryMarkovModel order1(seq, 1);
    bool order1_deviates = false;
    for (std::uint64_t seed = 0; seed < 10; ++seed)
        order1_deviates |= generate(order1, seq.size(), seed) != seq;
    EXPECT_TRUE(order1_deviates);
}

TEST(HistoryMarkov, FirstValueHonoursInitial)
{
    std::vector<std::int64_t> seq = {42, 1, 2, 1, 2};
    HistoryMarkovModel model(seq, 3);
    for (std::uint64_t seed = 0; seed < 5; ++seed)
        EXPECT_EQ(generate(model, seq.size(), seed).front(), 42);
}

TEST(HistoryMarkov, BuildMccKConstantCollapses)
{
    const auto model = buildMccK({5, 5, 5}, 4);
    EXPECT_EQ(model->tag(), ConstantModel::kTag);
    EXPECT_EQ(buildMccK({}, 2), nullptr);
    EXPECT_EQ(buildMccK({1, 2}, 2)->tag(), HistoryMarkovModel::kTag);
}

TEST(HistoryMarkov, CodecRoundTrip)
{
    registerHistoryMarkov();
    std::vector<std::int64_t> seq = {64, -264, 64, 64, 128, 64, -264};
    const auto model = buildMccK(seq, 3);

    util::ByteWriter writer;
    encodeFeatureModel(writer, model);
    util::ByteReader reader(writer.bytes());
    bool ok = true;
    const auto decoded = decodeFeatureModel(reader, ok);
    ASSERT_TRUE(ok);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->tag(), HistoryMarkovModel::kTag);
    EXPECT_EQ(decoded->sequenceLength(), seq.size());
    const auto out = generate(*decoded, seq.size(), 3);
    EXPECT_EQ(multiset(out), multiset(seq));
}

TEST(HistoryMarkov, HooksProduceWorkingProfiles)
{
    mem::Trace trace;
    util::Rng rng(9);
    mem::Tick tick = 0;
    for (int i = 0; i < 2000; ++i) {
        tick += 1 + rng.below(10);
        trace.add(tick, 0x1000 + (rng.below(1 << 14) & ~mem::Addr{7}),
                  rng.chance(0.5) ? 64 : 32,
                  rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    const Profile profile = buildProfile(
        trace, PartitionConfig::twoLevelTs(), mccKHooks(2));
    const mem::Trace synth = synthesize(profile, 5);
    EXPECT_EQ(synth.size(), trace.size());
    EXPECT_TRUE(synth.isTimeOrdered());

    // Strict convergence still holds at higher orders.
    std::uint64_t reads = 0, synth_reads = 0;
    for (const auto &r : trace)
        reads += r.isRead();
    for (const auto &r : synth)
        synth_reads += r.isRead();
    EXPECT_EQ(synth_reads, reads);
}

} // namespace
