#include "core/synthesis.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/model_generator.hpp"
#include "mem/trace_io.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

mem::Trace
randomTrace(std::size_t n, std::uint64_t seed)
{
    mem::Trace t("rt", "CPU");
    util::Rng rng(seed);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.below(40);
        t.add(tick,
              0x10000 + (rng.below(1 << 18) & ~mem::Addr{7}),
              rng.chance(0.5) ? 64 : 128,
              rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    return t;
}

TEST(LeafSynthesizer, FirstRequestUsesMetadata)
{
    mem::Trace trace;
    trace.add(500, 0x2000, 64, mem::Op::Write);
    trace.add(520, 0x2040, 64, mem::Op::Write);
    const Profile p = buildProfile(
        trace, PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic,
                                 0}}});
    ASSERT_EQ(p.leaves.size(), 1u);

    util::Rng rng(1);
    LeafSynthesizer synth(p.leaves[0], rng);
    mem::Request r;
    ASSERT_TRUE(synth.next(r));
    EXPECT_EQ(r.tick, 500u);
    EXPECT_EQ(r.addr, 0x2000u);
    EXPECT_EQ(r.op, mem::Op::Write);
    EXPECT_EQ(r.size, 64u);
    ASSERT_TRUE(synth.next(r));
    EXPECT_EQ(r.tick, 520u);
    EXPECT_EQ(r.addr, 0x2040u);
    EXPECT_FALSE(synth.next(r));
}

TEST(LeafSynthesizer, AddressesStayInRange)
{
    // A leaf whose strides would walk out of its region: addresses
    // must be wrapped back in (paper Sec. III-C).
    LeafModel leaf;
    leaf.startTime = 0;
    leaf.startAddr = 0x1000;
    leaf.addrLo = 0x1000;
    leaf.addrHi = 0x1100;
    leaf.count = 100;
    leaf.deltaTime = std::make_unique<ConstantModel>(10, 99);
    leaf.stride = std::make_unique<ConstantModel>(0x40, 99);
    leaf.op = std::make_unique<ConstantModel>(0, 100);
    leaf.size = std::make_unique<ConstantModel>(64, 100);

    util::Rng rng(2);
    LeafSynthesizer synth(leaf, rng);
    mem::Request r;
    while (synth.next(r)) {
        EXPECT_GE(r.addr, leaf.addrLo);
        EXPECT_LT(r.addr, leaf.addrHi);
    }
    EXPECT_EQ(synth.generated(), 100u);
}

TEST(LeafSynthesizer, NegativeStrideWrapsCorrectly)
{
    LeafModel leaf;
    leaf.startAddr = 0x1000;
    leaf.addrLo = 0x1000;
    leaf.addrHi = 0x1080;
    leaf.count = 10;
    leaf.deltaTime = std::make_unique<ConstantModel>(1, 9);
    leaf.stride = std::make_unique<ConstantModel>(-0x30, 9);
    leaf.op = std::make_unique<ConstantModel>(0, 10);
    leaf.size = std::make_unique<ConstantModel>(16, 10);

    util::Rng rng(3);
    LeafSynthesizer synth(leaf, rng);
    mem::Request r;
    while (synth.next(r)) {
        EXPECT_GE(r.addr, leaf.addrLo);
        EXPECT_LT(r.addr, leaf.addrHi);
    }
}

TEST(LeafSynthesizer, SingleAddressLeafPinsToBase)
{
    // Regression: addrLo == addrHi used to feed a zero span into the
    // wrap modulo (UB) as soon as a nonzero stride was sampled.
    LeafModel leaf;
    leaf.startTime = 0;
    leaf.startAddr = 0x4000;
    leaf.addrLo = 0x4000;
    leaf.addrHi = 0x4000;
    leaf.count = 50;
    leaf.deltaTime = std::make_unique<ConstantModel>(5, 49);
    leaf.stride = std::make_unique<ConstantModel>(0x40, 49);
    leaf.op = std::make_unique<ConstantModel>(0, 50);
    leaf.size = std::make_unique<ConstantModel>(64, 50);

    util::Rng rng(4);
    LeafSynthesizer synth(leaf, rng);
    mem::Request r;
    while (synth.next(r))
        EXPECT_EQ(r.addr, 0x4000u);
    EXPECT_EQ(synth.generated(), 50u);
}

TEST(LeafSynthesizer, ByteRangeNeverSpillsPastRegionEnd)
{
    // Regression: the wrap used to be size-unaware, so an address
    // just below addrHi plus the sampled size spilled past the
    // region, inflating footprints vs. the paper's Sec. III-C wrap.
    LeafModel leaf;
    leaf.startTime = 0;
    leaf.startAddr = 0x1000;
    leaf.addrLo = 0x1000;
    leaf.addrHi = 0x1100;
    leaf.count = 64;
    leaf.deltaTime = std::make_unique<ConstantModel>(10, 63);
    leaf.stride = std::make_unique<ConstantModel>(0x40, 63);
    leaf.op = std::make_unique<ConstantModel>(0, 64);
    leaf.size = std::make_unique<ConstantModel>(0x80, 64);

    util::Rng rng(5);
    LeafSynthesizer synth(leaf, rng);
    mem::Request r;
    while (synth.next(r)) {
        EXPECT_GE(r.addr, leaf.addrLo);
        EXPECT_LE(r.end(), leaf.addrHi) << "request spills past hi";
    }
    EXPECT_EQ(synth.generated(), 64u);
}

TEST(LeafSynthesizer, RequestLargerThanRegionClampsToBase)
{
    LeafModel leaf;
    leaf.startTime = 0;
    leaf.startAddr = 0x2000;
    leaf.addrLo = 0x2000;
    leaf.addrHi = 0x2020; // 32-byte region, 64-byte requests
    leaf.count = 10;
    leaf.deltaTime = std::make_unique<ConstantModel>(1, 9);
    leaf.stride = std::make_unique<ConstantModel>(8, 9);
    leaf.op = std::make_unique<ConstantModel>(0, 10);
    leaf.size = std::make_unique<ConstantModel>(64, 10);

    util::Rng rng(6);
    LeafSynthesizer synth(leaf, rng);
    mem::Request r;
    while (synth.next(r))
        EXPECT_EQ(r.addr, leaf.addrLo);
}

TEST(SynthesisEngine, OutputIsTimeOrdered)
{
    const mem::Trace trace = randomTrace(5000, 8);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(2000));
    const mem::Trace synth = synthesize(p, 7);
    EXPECT_TRUE(synth.isTimeOrdered());
}

TEST(SynthesisEngine, ProducesExactRequestCount)
{
    const mem::Trace trace = randomTrace(3000, 9);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTsByRequests(250));
    const mem::Trace synth = synthesize(p, 1);
    EXPECT_EQ(synth.size(), trace.size());
}

TEST(SynthesisEngine, StrictConvergencePreservesReadWriteCounts)
{
    // Paper Sec. IV-A: strict convergence ensures the exact number of
    // reads and writes is reproduced.
    const mem::Trace trace = randomTrace(4000, 10);
    std::uint64_t reads = 0;
    for (const auto &r : trace)
        reads += r.isRead();

    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(3000));
    const mem::Trace synth = synthesize(p, 99);
    std::uint64_t synth_reads = 0;
    for (const auto &r : synth)
        synth_reads += r.isRead();
    EXPECT_EQ(synth_reads, reads);
}

TEST(SynthesisEngine, PreservesSizeMultiset)
{
    const mem::Trace trace = randomTrace(2000, 11);
    std::map<std::uint32_t, int> original;
    for (const auto &r : trace)
        ++original[r.size];

    const mem::Trace synth = synthesize(
        buildProfile(trace, PartitionConfig::twoLevelTs(2500)), 5);
    std::map<std::uint32_t, int> generated;
    for (const auto &r : synth)
        ++generated[r.size];
    EXPECT_EQ(generated, original);
}

TEST(SynthesisEngine, DeterministicForSeed)
{
    const mem::Trace trace = randomTrace(1000, 12);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(5000));
    const mem::Trace a = synthesize(p, 42);
    const mem::Trace b = synthesize(p, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(SynthesisEngine, DifferentSeedsDifferentStreams)
{
    const mem::Trace trace = randomTrace(1000, 13);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(5000));
    const mem::Trace a = synthesize(p, 1);
    const mem::Trace b = synthesize(p, 2);
    ASSERT_EQ(a.size(), b.size());
    bool any_different = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_different |= !(a[i] == b[i]);
    EXPECT_TRUE(any_different);
}

TEST(SynthesisEngine, PerfectlyRegularTraceReproducedExactly)
{
    // A purely linear, constant-everything trace is captured with
    // constants and reproduced bit-exactly.
    mem::Trace trace("linear", "DPU");
    for (int i = 0; i < 500; ++i) {
        trace.add(static_cast<mem::Tick>(i * 10),
                  0x4000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Read);
    }
    const Profile p = buildProfile(
        trace, PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic,
                                 0}}});
    const mem::Trace synth = synthesize(p, 77);
    ASSERT_EQ(synth.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(synth[i], trace[i]) << "index " << i;
}

TEST(SynthesisEngine, RequestSourceInterfaceStreams)
{
    const mem::Trace trace = randomTrace(200, 14);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(100000));
    SynthesisEngine engine(p, 3);
    EXPECT_EQ(engine.total(), 200u);

    mem::Request r;
    std::size_t count = 0;
    while (engine.next(r))
        ++count;
    EXPECT_EQ(count, 200u);
    EXPECT_EQ(engine.generated(), 200u);
    EXPECT_FALSE(engine.next(r));
}

TEST(SynthesisEngine, EmptyProfile)
{
    Profile p;
    SynthesisEngine engine(p, 1);
    mem::Request r;
    EXPECT_FALSE(engine.next(r));
    EXPECT_EQ(engine.total(), 0u);
}

TEST(LoopedSynthesis, GeneratesRequestedIterations)
{
    const mem::Trace trace = randomTrace(500, 20);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(100000));

    LoopedSynthesis source(p, 3, 1000, 7);
    EXPECT_EQ(source.total(), 1500u);

    mem::Request r;
    std::size_t count = 0;
    mem::Tick last = 0;
    while (source.next(r)) {
        EXPECT_GE(r.tick, last); // monotonic across iterations
        last = r.tick;
        ++count;
    }
    EXPECT_EQ(count, 1500u);
    EXPECT_EQ(source.iterationsDone(), 3u);
}

TEST(LoopedSynthesis, GapSeparatesIterations)
{
    mem::Trace trace;
    for (int i = 0; i < 100; ++i)
        trace.add(static_cast<mem::Tick>(i * 10), 0x1000 + i * 64, 64,
                  mem::Op::Read);
    const Profile p = buildProfile(
        trace, PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic,
                                 0}}});

    LoopedSynthesis source(p, 2, 5000, 1);
    std::vector<mem::Tick> ticks;
    mem::Request r;
    while (source.next(r))
        ticks.push_back(r.tick);
    ASSERT_EQ(ticks.size(), 200u);
    // Iteration 2 starts one gap after iteration 1's last request.
    EXPECT_EQ(ticks[100], ticks[99] + 5000);
}

TEST(LoopedSynthesis, IterationsDiffer)
{
    // One dense region with irregular strides: the leaf needs a
    // stochastic Markov chain, so reseeded iterations reorder.
    mem::Trace trace;
    util::Rng rng(21);
    for (int i = 0; i < 300; ++i) {
        trace.add(static_cast<mem::Tick>(i * 7),
                  0x1000 + (rng.below(2048) & ~mem::Addr{7}), 64,
                  mem::Op::Read);
    }
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(100000));

    LoopedSynthesis source(p, 2, 0, 1);
    std::vector<mem::Request> all;
    mem::Request r;
    while (source.next(r))
        all.push_back(r);
    ASSERT_EQ(all.size(), 600u);
    // Reseeded iterations are not byte-identical (modulo timestamps).
    bool differs = false;
    for (std::size_t i = 0; i < 300; ++i)
        differs |= all[i].addr != all[300 + i].addr;
    EXPECT_TRUE(differs);
}

TEST(LoopedSynthesis, ZeroIterations)
{
    const Profile p = buildProfile(randomTrace(100, 22),
                                   PartitionConfig::twoLevelTs());
    LoopedSynthesis source(p, 0);
    mem::Request r;
    EXPECT_FALSE(source.next(r));
    EXPECT_EQ(source.total(), 0u);
}

TEST(ShardedSynthesis, BitIdenticalAcrossThreadCounts)
{
    // Same seed => byte-identical synthetic trace for 1, 2 and 8
    // workers: the sharded path forks the same per-leaf RNG streams
    // and merges with the same (tick, leaf) tie-break.
    const mem::Trace trace = randomTrace(4000, 30);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(2000));
    ASSERT_GT(p.leaves.size(), 1u);

    const auto reference = mem::encodeTrace(synthesize(p, 21, 1));
    for (const unsigned threads : {2u, 8u}) {
        const auto bytes =
            mem::encodeTrace(synthesize(p, 21, threads));
        EXPECT_EQ(bytes, reference) << "threads=" << threads;
    }
}

TEST(ShardedSynthesis, MatchesSequentialEngineRequestByRequest)
{
    const mem::Trace trace = randomTrace(2500, 31);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(1500));

    SynthesisEngine engine(p, 9);
    const mem::Trace sharded = synthesize(p, 9, 4);
    ASSERT_EQ(sharded.size(), engine.total());

    mem::Request r;
    std::size_t i = 0;
    while (engine.next(r)) {
        ASSERT_LT(i, sharded.size());
        EXPECT_EQ(sharded[i], r) << "index " << i;
        ++i;
    }
    EXPECT_EQ(i, sharded.size());
}

TEST(ShardedSynthesis, AutoThreadCountMatchesSequential)
{
    const mem::Trace trace = randomTrace(1200, 32);
    const Profile p =
        buildProfile(trace, PartitionConfig::twoLevelTs(3000));
    const auto seq = mem::encodeTrace(synthesize(p, 3, 1));
    const auto auto_threads = mem::encodeTrace(synthesize(p, 3, 0));
    EXPECT_EQ(auto_threads, seq);
}

TEST(SynthesisEngine, ConcurrentLeavesInterleave)
{
    // Two leaves with overlapping time ranges must interleave in the
    // merged stream (the priority-queue injection process).
    mem::Trace trace;
    for (int i = 0; i < 10; ++i) {
        trace.add(static_cast<mem::Tick>(i * 10), 0x1000 + i * 64, 64,
                  mem::Op::Read);
        trace.add(static_cast<mem::Tick>(i * 10 + 5),
                  0x800000 + i * 64, 64, mem::Op::Write);
    }
    trace.sortByTime();
    const Profile p = buildProfile(
        trace, PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic,
                                 0}}});
    ASSERT_EQ(p.leaves.size(), 2u);
    const mem::Trace synth = synthesize(p, 1);
    ASSERT_EQ(synth.size(), 20u);
    // Ops alternate R W R W ... because the streams interleave.
    for (std::size_t i = 0; i < synth.size(); ++i) {
        EXPECT_EQ(synth[i].op,
                  i % 2 == 0 ? mem::Op::Read : mem::Op::Write);
    }
}

} // namespace
