#include "core/streamed_build.hpp"

#include <gtest/gtest.h>

#include "core/model_generator.hpp"
#include "mem/trace_reader.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

/**
 * A trace with every structure the partitioners care about: dense
 * clusters (merged regions), strided lonely requests (run grouping),
 * isolated stragglers (leftovers), bursty and quiet stretches (cycle
 * windows of varying population) and mixed ops/sizes.
 */
mem::Trace
makeTrace(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    mem::Trace trace("streamed-test", "GPU");
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += static_cast<mem::Tick>(rng.below(400));
        mem::Addr addr;
        switch (rng.below(4)) {
          case 0: // dense cluster: overlapping/adjacent ranges
            addr = 0x10000 + rng.below(64) * 32;
            break;
          case 1: // second cluster
            addr = 0x40000 + rng.below(32) * 64;
            break;
          case 2: // strided lonely requests
            addr = 0x100000 + rng.below(512) * 0x1000;
            break;
          default: // scattered stragglers
            addr = 0x1000000 + rng.below(1u << 20) * 0x200;
            break;
        }
        const std::uint32_t size = 16u << rng.below(4);
        const mem::Op op =
            rng.chance(0.3) ? mem::Op::Write : mem::Op::Read;
        trace.add(tick, addr, size, op);
    }
    return trace;
}

std::vector<PartitionConfig>
streamableConfigs()
{
    return {
        PartitionConfig{},                        // flat: one leaf
        PartitionConfig{{{PartitionLayer::Kind::TemporalRequestCount,
                          1000}}},                // temporal only
        PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic, 0}}},
        PartitionConfig::twoLevelTs(50000),       // cycles + dynamic
        PartitionConfig::twoLevelTsByRequests(700),
        PartitionConfig::twoLevelTsFixed(700, 4096),
        // three temporal layers then dynamic spatial
        PartitionConfig{{{PartitionLayer::Kind::TemporalCycleCount,
                          200000},
                         {PartitionLayer::Kind::TemporalRequestCount,
                          300},
                         {PartitionLayer::Kind::TemporalCycleCount,
                          20000},
                         {PartitionLayer::Kind::SpatialDynamic, 0}}},
    };
}

void
expectProfilesIdentical(const Profile &expected, const Profile &actual,
                        const std::string &context)
{
    ASSERT_EQ(expected.leaves.size(), actual.leaves.size()) << context;
    const std::vector<std::uint8_t> a = expected.encode();
    const std::vector<std::uint8_t> b = actual.encode();
    EXPECT_EQ(a, b) << context << ": encoded profiles differ";
}

TEST(StreamedBuild, MatchesInMemoryAcrossChunksAndThreads)
{
    const mem::Trace trace = makeTrace(5000, 0xfeed);
    const std::size_t chunks[] = {1, 4093, trace.size()};
    const unsigned thread_counts[] = {1, 4};

    for (const PartitionConfig &config : streamableConfigs()) {
        ASSERT_TRUE(canStreamConfig(config)) << config.describe();
        const Profile expected = buildProfile(trace, config);
        for (const std::size_t chunk : chunks) {
            for (const unsigned threads : thread_counts) {
                mem::MemoryTraceReader reader(trace);
                StreamedBuildOptions options;
                options.chunkRequests = chunk;
                options.threads = threads;
                std::string error;
                const Profile actual = buildProfileStreamed(
                    reader, config, options, &error);
                ASSERT_TRUE(error.empty()) << error;
                expectProfilesIdentical(
                    expected, actual,
                    config.describe() + " chunk=" +
                        std::to_string(chunk) + " threads=" +
                        std::to_string(threads));
            }
        }
    }
}

TEST(StreamedBuild, CarriesTraceMetadata)
{
    const mem::Trace trace = makeTrace(100, 1);
    mem::MemoryTraceReader reader(trace);
    std::string error;
    const Profile profile = buildProfileStreamed(
        reader, PartitionConfig::twoLevelTs(), {}, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(profile.name, "streamed-test");
    EXPECT_EQ(profile.device, "GPU");
}

TEST(StreamedBuild, EmptyTraceYieldsEmptyProfile)
{
    const mem::Trace trace("empty", "CPU");
    for (const PartitionConfig &config : streamableConfigs()) {
        mem::MemoryTraceReader reader(trace);
        std::string error;
        const Profile profile =
            buildProfileStreamed(reader, config, {}, &error);
        ASSERT_TRUE(error.empty()) << error;
        EXPECT_TRUE(profile.leaves.empty()) << config.describe();
        const Profile expected = buildProfile(trace, config);
        expectProfilesIdentical(expected, profile, config.describe());
    }
}

TEST(StreamedBuild, ChunkBoundarySplittingRegionStillMatches)
{
    // A single dynamic region whose member ranges straddle every chunk
    // boundary: requests 0..99 all merge into one region through
    // overlapping 64B ranges at 32B strides. With chunk=7 the sorted
    // runs each hold fragments of the region; the k-way merge must
    // reassemble it exactly.
    mem::Trace trace("split", "NPU");
    for (std::size_t i = 0; i < 100; ++i) {
        trace.add(static_cast<mem::Tick>(i * 10),
                  0x8000 + (99 - i) * 32, 64,
                  i % 2 != 0 ? mem::Op::Write : mem::Op::Read);
    }
    // NB: addresses descend over time, so ranges sort opposite to time
    // order — exercising the local-index tiebreak as well.
    const PartitionConfig config{
        {{PartitionLayer::Kind::SpatialDynamic, 0}}};
    const Profile expected = buildProfile(trace, config);
    ASSERT_EQ(expected.leaves.size(), 1u);

    for (const std::size_t chunk : {std::size_t(1), std::size_t(7)}) {
        mem::MemoryTraceReader reader(trace);
        StreamedBuildOptions options;
        options.chunkRequests = chunk;
        std::string error;
        const Profile actual =
            buildProfileStreamed(reader, config, options, &error);
        ASSERT_TRUE(error.empty()) << error;
        expectProfilesIdentical(expected, actual,
                                "chunk=" + std::to_string(chunk));
    }
}

TEST(StreamedBuild, UnwritableSpillDirFailsLoudly)
{
    const mem::Trace trace = makeTrace(50, 2);
    mem::MemoryTraceReader reader(trace);
    StreamedBuildOptions options;
    options.spillDir = "/proc/no-such-dir/spill";
    std::string error;
    const Profile profile = buildProfileStreamed(
        reader, PartitionConfig::twoLevelTs(), options, &error);
    EXPECT_TRUE(profile.leaves.empty());
    ASSERT_FALSE(error.empty());
    EXPECT_NE(error.find("/proc/no-such-dir/spill"), std::string::npos)
        << error;
}

TEST(StreamedBuild, OutOfOrderTraceFailsLoudly)
{
    mem::Trace trace("backwards", "CPU");
    trace.requests().push_back({100, 0x1000, 64, mem::Op::Read});
    trace.requests().push_back({50, 0x2000, 64, mem::Op::Read});
    mem::MemoryTraceReader reader(trace);
    std::string error;
    const Profile profile = buildProfileStreamed(
        reader, PartitionConfig::twoLevelTs(), {}, &error);
    EXPECT_TRUE(profile.leaves.empty());
    EXPECT_NE(error.find("not time-ordered"), std::string::npos)
        << error;
}

TEST(StreamedBuild, RejectsUnstreamableConfigs)
{
    // Spatial above temporal: the subsets handed to the temporal layer
    // are address-ordered, which streaming cannot reproduce.
    EXPECT_FALSE(canStreamConfig(PartitionConfig{
        {{PartitionLayer::Kind::SpatialDynamic, 0},
         {PartitionLayer::Kind::TemporalRequestCount, 100}}}));
    // Two spatial layers.
    EXPECT_FALSE(canStreamConfig(PartitionConfig{
        {{PartitionLayer::Kind::SpatialFixed, 4096},
         {PartitionLayer::Kind::SpatialDynamic, 0}}}));
    // Degenerate interval values (the in-memory path asserts).
    EXPECT_FALSE(canStreamConfig(PartitionConfig{
        {{PartitionLayer::Kind::TemporalRequestCount, 0}}}));
    EXPECT_FALSE(canStreamConfig(
        PartitionConfig{{{PartitionLayer::Kind::SpatialFixed, 0}}}));

    const mem::Trace trace = makeTrace(10, 3);
    mem::MemoryTraceReader reader(trace);
    std::string error;
    const Profile profile = buildProfileStreamed(
        reader,
        PartitionConfig{{{PartitionLayer::Kind::SpatialDynamic, 0},
                         {PartitionLayer::Kind::TemporalRequestCount,
                          100}}},
        {}, &error);
    EXPECT_TRUE(profile.leaves.empty());
    EXPECT_NE(error.find("not streamable"), std::string::npos) << error;
}

TEST(StreamedBuild, MaxMemoryBoundDerivesChunk)
{
    // A byte bound instead of an explicit chunk must still build the
    // identical profile (the bound only sizes internal buffers).
    const mem::Trace trace = makeTrace(3000, 4);
    const PartitionConfig config = PartitionConfig::twoLevelTs(50000);
    const Profile expected = buildProfile(trace, config);
    mem::MemoryTraceReader reader(trace);
    StreamedBuildOptions options;
    options.maxMemoryBytes = 1 << 20; // 1 MB: tiny but valid
    std::string error;
    const Profile actual =
        buildProfileStreamed(reader, config, options, &error);
    ASSERT_TRUE(error.empty()) << error;
    expectProfilesIdentical(expected, actual, "maxMemoryBytes");
}

} // namespace
