#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

mem::Trace
traceOf(std::initializer_list<mem::Request> requests)
{
    mem::Trace t;
    for (const auto &r : requests)
        t.add(r);
    return t;
}

IndexList
allIndices(const mem::Trace &trace)
{
    IndexList idx(trace.size());
    for (std::uint32_t i = 0; i < trace.size(); ++i)
        idx[i] = i;
    return idx;
}

TEST(PartitionConfig, NamedConstructorsMatchPaper)
{
    const auto ts = PartitionConfig::twoLevelTs();
    ASSERT_EQ(ts.layers.size(), 2u);
    EXPECT_EQ(ts.layers[0].kind,
              PartitionLayer::Kind::TemporalCycleCount);
    EXPECT_EQ(ts.layers[0].value, 500000u);
    EXPECT_EQ(ts.layers[1].kind, PartitionLayer::Kind::SpatialDynamic);

    const auto tsr = PartitionConfig::twoLevelTsByRequests();
    EXPECT_EQ(tsr.layers[0].kind,
              PartitionLayer::Kind::TemporalRequestCount);
    EXPECT_EQ(tsr.layers[0].value, 100000u);

    const auto fixed = PartitionConfig::twoLevelTsFixed();
    EXPECT_EQ(fixed.layers[1].kind, PartitionLayer::Kind::SpatialFixed);
    EXPECT_EQ(fixed.layers[1].value, 4096u);
}

TEST(PartitionConfig, DescribeAndCodec)
{
    const auto config = PartitionConfig::twoLevelTs(1000);
    EXPECT_NE(config.describe().find("cycle_count=1000"),
              std::string::npos);
    util::ByteWriter w;
    config.encode(w);
    util::ByteReader r(w.bytes());
    PartitionConfig decoded;
    ASSERT_TRUE(PartitionConfig::decode(r, decoded));
    EXPECT_EQ(decoded, config);
}

TEST(TemporalRequestCount, ChunksOfN)
{
    IndexList idx = {0, 1, 2, 3, 4, 5, 6};
    const auto parts = partitionByRequestCount(idx, 3);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], (IndexList{0, 1, 2}));
    EXPECT_EQ(parts[1], (IndexList{3, 4, 5}));
    EXPECT_EQ(parts[2], (IndexList{6}));
}

TEST(TemporalRequestCount, EmptyInput)
{
    EXPECT_TRUE(partitionByRequestCount({}, 10).empty());
}

TEST(TemporalCycleCount, AnchorsAtFirstRequest)
{
    const auto t = traceOf({
        {1000, 0, 4, mem::Op::Read},
        {1099, 4, 4, mem::Op::Read},
        {1100, 8, 4, mem::Op::Read},
        {1250, 12, 4, mem::Op::Read},
    });
    const auto parts = partitionByCycleCount(t, allIndices(t), 100);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], (IndexList{0, 1}));
    EXPECT_EQ(parts[1], (IndexList{2}));
    EXPECT_EQ(parts[2], (IndexList{3}));
}

TEST(TemporalCycleCount, EmptyWindowsProduceNoPartitions)
{
    const auto t = traceOf({
        {0, 0, 4, mem::Op::Read},
        {1000000, 4, 4, mem::Op::Read},
    });
    const auto parts = partitionByCycleCount(t, allIndices(t), 100);
    EXPECT_EQ(parts.size(), 2u);
}

TEST(TemporalCycleCount, AddressOrderedInputIsBinnedByTime)
{
    // Regression: the old implementation assumed tick-sorted indices
    // and cut a new partition at every window change, so the
    // address-ordered subsets a spatial layer hands down were
    // mis-binned (one window split into several partitions, windows
    // anchored at the wrong tick).
    const auto t = traceOf({
        {0, 0x0000, 4, mem::Op::Read},   // window 0
        {250, 0x3000, 4, mem::Op::Read}, // window 2
        {50, 0x1000, 4, mem::Op::Read},  // window 0
        {120, 0x2000, 4, mem::Op::Read}, // window 1
    });
    // Address order: indices 0, 2, 3, 1 — not tick order.
    const IndexList by_addr = {0, 2, 3, 1};
    const auto parts = partitionByCycleCount(t, by_addr, 100);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], (IndexList{0, 2})); // ticks 0, 50
    EXPECT_EQ(parts[1], (IndexList{3}));    // tick 120
    EXPECT_EQ(parts[2], (IndexList{1}));    // tick 250
}

TEST(TemporalCycleCount, AnchorIsEarliestTickNotFirstArrival)
{
    const auto t = traceOf({
        {500, 0x1000, 4, mem::Op::Read},
        {10, 0x2000, 4, mem::Op::Read},
    });
    // The later request arrives first; windows must still anchor at
    // tick 10.
    const IndexList reversed = {0, 1};
    const auto parts = partitionByCycleCount(t, reversed, 100);
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0], (IndexList{1}));
    EXPECT_EQ(parts[1], (IndexList{0}));
}

TEST(BuildLeaves, SpatialBeforeTemporalHierarchy)
{
    // A spatial->temporal hierarchy: two distant regions, each active
    // in two separate bursts. Every leaf must be one (region, window)
    // subset with time-ordered requests spanning < one window.
    mem::Trace t;
    for (int burst = 0; burst < 2; ++burst) {
        const mem::Tick base = static_cast<mem::Tick>(burst) * 10000;
        for (int i = 0; i < 8; ++i) {
            t.add(base + static_cast<mem::Tick>(i) * 10,
                  0x1000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Read);
            t.add(base + static_cast<mem::Tick>(i) * 10 + 5,
                  0x800000 + static_cast<mem::Addr>(i) * 64, 64,
                  mem::Op::Write);
        }
    }
    t.sortByTime();

    const PartitionConfig config{
        {{PartitionLayer::Kind::SpatialDynamic, 0},
         {PartitionLayer::Kind::TemporalCycleCount, 1000}}};
    const auto leaves = buildLeaves(t, config);
    ASSERT_EQ(leaves.size(), 4u); // 2 regions x 2 bursts

    std::size_t total = 0;
    for (const auto &leaf : leaves) {
        ASSERT_FALSE(leaf.requests.empty());
        total += leaf.requests.size();
        mem::Tick last = leaf.requests.front().tick;
        mem::Tick first = last;
        for (const auto &r : leaf.requests) {
            EXPECT_GE(r.tick, last); // time order inside the leaf
            last = r.tick;
            EXPECT_GE(r.addr, leaf.addrLo);
            EXPECT_LE(r.end(), leaf.addrHi);
        }
        EXPECT_LT(last - first, 1000u); // fits one temporal window
    }
    EXPECT_EQ(total, t.size());
}

TEST(SpatialFixed, GroupsByBlock)
{
    const auto t = traceOf({
        {0, 0x0000, 64, mem::Op::Read},
        {1, 0x1001, 4, mem::Op::Read},
        {2, 0x0800, 64, mem::Op::Read},
        {3, 0x1fff, 1, mem::Op::Read},
    });
    const auto regions = partitionSpatialFixed(t, allIndices(t), 4096);
    ASSERT_EQ(regions.size(), 2u);
    EXPECT_EQ(regions[0].lo, 0u);
    EXPECT_EQ(regions[0].hi, 4096u);
    EXPECT_EQ(regions[0].indices, (IndexList{0, 2}));
    EXPECT_EQ(regions[1].lo, 4096u);
    EXPECT_EQ(regions[1].indices, (IndexList{1, 3}));
}

TEST(SpatialFixed, SpanningRequestStretchesRegion)
{
    // A request assigned to a block by its start address may spill
    // past the block boundary; the region grows to contain it.
    const auto t = traceOf({
        {0, 0x0fc0, 128, mem::Op::Read}, // spills into the next block
        {1, 0x0100, 64, mem::Op::Read},
    });
    const auto regions = partitionSpatialFixed(t, allIndices(t), 4096);
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].lo, 0u);
    EXPECT_EQ(regions[0].hi, 0x1040u); // 4096 stretched to 0xfc0+128
}

TEST(SpatialDynamic, MergesOverlapping)
{
    const auto t = traceOf({
        {0, 100, 50, mem::Op::Read},  // [100,150)
        {1, 120, 100, mem::Op::Read}, // overlaps -> [100,220)
    });
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].lo, 100u);
    EXPECT_EQ(regions[0].hi, 220u);
}

TEST(SpatialDynamic, MergesAdjacent)
{
    const auto t = traceOf({
        {0, 0, 64, mem::Op::Read},  // [0,64)
        {1, 64, 64, mem::Op::Read}, // adjacent
        {2, 64, 64, mem::Op::Read},
    });
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].hi, 128u);
    EXPECT_EQ(regions[0].indices, (IndexList{0, 1, 2}));
}

TEST(SpatialDynamic, SplitsDisjointGroups)
{
    const auto t = traceOf({
        {0, 0, 64, mem::Op::Read},
        {1, 64, 64, mem::Op::Read},
        {2, 4096, 64, mem::Op::Read},
        {3, 4160, 64, mem::Op::Read},
    });
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    ASSERT_EQ(regions.size(), 2u);
    EXPECT_EQ(regions[0].indices, (IndexList{0, 1}));
    EXPECT_EQ(regions[1].indices, (IndexList{2, 3}));
}

TEST(SpatialDynamic, VariableSizedRegionsNotBlockMultiples)
{
    // Region sizes adapt to the data: 100 and 24 bytes here.
    const auto t = traceOf({
        {0, 0, 100, mem::Op::Read},
        {1, 50, 50, mem::Op::Read},
        {2, 1000, 24, mem::Op::Read},
        {3, 1000, 24, mem::Op::Read},
    });
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    ASSERT_EQ(regions.size(), 2u);
    EXPECT_EQ(regions[0].hi - regions[0].lo, 100u);
    EXPECT_EQ(regions[1].hi - regions[1].lo, 24u);
}

TEST(SpatialDynamic, LonelyRequestsMergeTogether)
{
    // Two isolated single requests with nothing nearby: they merge
    // into one partition (paper partition D).
    const auto t = traceOf({
        {0, 0, 64, mem::Op::Read},
        {1, 64, 64, mem::Op::Read},
        {2, 100000, 64, mem::Op::Read}, // lonely
        {3, 900000, 64, mem::Op::Read}, // lonely
    });
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    ASSERT_EQ(regions.size(), 2u);
    std::set<std::size_t> sizes;
    for (const auto &r : regions)
        sizes.insert(r.indices.size());
    EXPECT_EQ(sizes, (std::set<std::size_t>{2, 2}));
}

TEST(SpatialDynamic, EquallyStridedLoneliesGroup)
{
    // Four lonely requests with equal spacing form one partition.
    const auto t = traceOf({
        {0, 0x10000, 64, mem::Op::Read},
        {1, 0x20000, 64, mem::Op::Read},
        {2, 0x30000, 64, mem::Op::Read},
        {3, 0x40000, 64, mem::Op::Read},
    });
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].indices.size(), 4u);
    EXPECT_EQ(regions[0].lo, 0x10000u);
    EXPECT_EQ(regions[0].hi, 0x40040u);
}

TEST(SpatialDynamic, SingleRequestTrace)
{
    const auto t = traceOf({{0, 0x100, 64, mem::Op::Read}});
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].indices, (IndexList{0}));
}

TEST(SpatialDynamic, PartitionsCoverAllRequestsExactlyOnce)
{
    mem::Trace t;
    util::Rng rng(12);
    for (std::uint32_t i = 0; i < 2000; ++i) {
        t.add(i, rng.below(1 << 20) & ~mem::Addr{3},
              static_cast<std::uint32_t>(1 + rng.below(128)),
              mem::Op::Read);
    }
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    std::set<std::uint32_t> seen;
    for (const auto &region : regions) {
        for (const auto idx : region.indices) {
            EXPECT_TRUE(seen.insert(idx).second)
                << "index " << idx << " appears twice";
        }
        // Time order within each region.
        for (std::size_t i = 1; i < region.indices.size(); ++i)
            EXPECT_LT(region.indices[i - 1], region.indices[i]);
        // All requests lie within the region bounds.
        for (const auto idx : region.indices) {
            EXPECT_GE(t[idx].addr, region.lo);
            EXPECT_LE(t[idx].end(), region.hi);
        }
    }
    EXPECT_EQ(seen.size(), t.size());
}

TEST(SpatialDynamic, RegionsDisjointWhenNoLonelyRequests)
{
    // Every address is accessed twice, so no sweep region is lonely
    // and all regions come from the Alg. 1 merge: they must be
    // pairwise disjoint.
    mem::Trace t;
    util::Rng rng(13);
    for (std::uint32_t i = 0; i < 1000; ++i) {
        const mem::Addr addr = rng.below(1 << 20) & ~mem::Addr{3};
        t.add(2 * i, addr, 32, mem::Op::Read);
        t.add(2 * i + 1, addr, 32, mem::Op::Write);
    }
    const auto regions = partitionSpatialDynamic(t, allIndices(t));
    std::vector<std::pair<mem::Addr, mem::Addr>> spans;
    for (const auto &region : regions) {
        ASSERT_GT(region.indices.size(), 1u);
        spans.emplace_back(region.lo, region.hi);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_LE(spans[i - 1].second, spans[i].first);
}

TEST(BuildLeaves, TemporalThenSpatial)
{
    // Paper Fig. 4a: two concurrent streams in one time window split
    // into two spatial leaves.
    const auto t = traceOf({
        {0, 0x1000, 64, mem::Op::Read},
        {10, 0x8000, 64, mem::Op::Write},
        {20, 0x1040, 64, mem::Op::Read},
        {30, 0x8040, 64, mem::Op::Write},
    });
    PartitionConfig config{
        {{PartitionLayer::Kind::TemporalCycleCount, 1000},
         {PartitionLayer::Kind::SpatialDynamic, 0}}};
    const auto leaves = buildLeaves(t, config);
    ASSERT_EQ(leaves.size(), 2u);
    EXPECT_EQ(leaves[0].requests.size(), 2u);
    EXPECT_EQ(leaves[1].requests.size(), 2u);
    // Tight dynamic bounds.
    EXPECT_EQ(leaves[0].addrLo, 0x1000u);
    EXPECT_EQ(leaves[0].addrHi, 0x1080u);
}

TEST(BuildLeaves, TableIExampleTwoTemporalSubPartitions)
{
    // Paper Table I: partition F split spatially first, then into two
    // temporal halves of six requests each.
    mem::Trace t;
    const mem::Addr f = 0x81002EB8;
    const std::uint32_t sizes[6] = {128, 64, 64, 64, 64, 64};
    const mem::Addr addrs[6] = {f, f + 8, f + 0x48, f + 0x88, f + 0xc8,
                                f + 0x108};
    for (int rep = 0; rep < 2; ++rep) {
        for (int i = 0; i < 6; ++i) {
            t.add(static_cast<mem::Tick>(rep * 600 + i * 10), addrs[i],
                  sizes[i], mem::Op::Read);
        }
    }
    PartitionConfig config{
        {{PartitionLayer::Kind::SpatialDynamic, 0},
         {PartitionLayer::Kind::TemporalRequestCount, 6}}};
    const auto leaves = buildLeaves(t, config);
    ASSERT_EQ(leaves.size(), 2u);
    EXPECT_EQ(leaves[0].requests.size(), 6u);
    EXPECT_EQ(leaves[1].requests.size(), 6u);
    // Both leaves inherit the spatial bounds of partition F.
    EXPECT_EQ(leaves[0].addrLo, leaves[1].addrLo);
    EXPECT_EQ(leaves[0].addrHi, leaves[1].addrHi);
}

TEST(BuildLeaves, FixedBlocksKeepLooseBounds)
{
    const auto t = traceOf({
        {0, 0x1100, 64, mem::Op::Read},
        {1, 0x1200, 64, mem::Op::Read},
    });
    PartitionConfig config{
        {{PartitionLayer::Kind::SpatialFixed, 4096}}};
    const auto leaves = buildLeaves(t, config);
    ASSERT_EQ(leaves.size(), 1u);
    // The whole 4 KiB block, not the touched 0x1100..0x1240 span.
    EXPECT_EQ(leaves[0].addrLo, 0x1000u);
    EXPECT_EQ(leaves[0].addrHi, 0x2000u);
}

TEST(BuildLeaves, PurelyTemporalUsesTightRequestBounds)
{
    const auto t = traceOf({
        {0, 0x500, 64, mem::Op::Read},
        {1, 0x900, 32, mem::Op::Read},
    });
    PartitionConfig config{
        {{PartitionLayer::Kind::TemporalRequestCount, 10}}};
    const auto leaves = buildLeaves(t, config);
    ASSERT_EQ(leaves.size(), 1u);
    EXPECT_EQ(leaves[0].addrLo, 0x500u);
    EXPECT_EQ(leaves[0].addrHi, 0x920u);
}

TEST(BuildLeaves, LeafCountsSumToTraceSize)
{
    mem::Trace t;
    util::Rng rng(21);
    mem::Tick tick = 0;
    for (std::uint32_t i = 0; i < 5000; ++i) {
        tick += rng.below(200);
        t.add(tick, rng.below(1 << 22) & ~mem::Addr{3}, 64,
              rng.chance(0.3) ? mem::Op::Write : mem::Op::Read);
    }
    for (const auto &config :
         {PartitionConfig::twoLevelTs(10000),
          PartitionConfig::twoLevelTsByRequests(500),
          PartitionConfig::twoLevelTsFixed(500, 4096)}) {
        const auto leaves = buildLeaves(t, config);
        std::size_t total = 0;
        for (const auto &leaf : leaves)
            total += leaf.requests.size();
        EXPECT_EQ(total, t.size()) << config.describe();
    }
}

TEST(BuildLeaves, EmptyTrace)
{
    EXPECT_TRUE(
        buildLeaves(mem::Trace{}, PartitionConfig::twoLevelTs()).empty());
}

} // namespace
