#include "core/profile.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/model_generator.hpp"
#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::core;

mem::Trace
sampleTrace(std::size_t n)
{
    mem::Trace t("unit", "CPU");
    util::Rng rng(55);
    mem::Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += 1 + rng.below(50);
        t.add(tick, 0x1000 + (rng.below(1 << 16) & ~mem::Addr{7}),
              rng.chance(0.5) ? 64 : 32,
              rng.chance(0.25) ? mem::Op::Write : mem::Op::Read);
    }
    return t;
}

Profile
sampleProfile(std::size_t n = 2000)
{
    return buildProfile(sampleTrace(n),
                        PartitionConfig::twoLevelTsByRequests(500));
}

TEST(Profile, TotalRequestsSumsLeaves)
{
    const Profile p = sampleProfile();
    EXPECT_EQ(p.totalRequests(), 2000u);
}

TEST(Profile, EncodeDecodeRoundTrip)
{
    const Profile p = sampleProfile();
    Profile decoded;
    ASSERT_TRUE(Profile::decode(p.encode(), decoded));
    EXPECT_EQ(decoded.name, p.name);
    EXPECT_EQ(decoded.device, p.device);
    EXPECT_EQ(decoded.config, p.config);
    ASSERT_EQ(decoded.leaves.size(), p.leaves.size());
    for (std::size_t i = 0; i < p.leaves.size(); ++i) {
        EXPECT_EQ(decoded.leaves[i].startTime, p.leaves[i].startTime);
        EXPECT_EQ(decoded.leaves[i].startAddr, p.leaves[i].startAddr);
        EXPECT_EQ(decoded.leaves[i].addrLo, p.leaves[i].addrLo);
        EXPECT_EQ(decoded.leaves[i].addrHi, p.leaves[i].addrHi);
        EXPECT_EQ(decoded.leaves[i].count, p.leaves[i].count);
        EXPECT_EQ(decoded.leaves[i].op != nullptr,
                  p.leaves[i].op != nullptr);
    }
}

TEST(Profile, CompressedRoundTrip)
{
    const Profile p = sampleProfile();
    Profile decoded;
    ASSERT_TRUE(
        Profile::decodeCompressed(p.encodeCompressed(), decoded));
    EXPECT_EQ(decoded.leaves.size(), p.leaves.size());
    EXPECT_EQ(decoded.totalRequests(), p.totalRequests());
}

TEST(Profile, CompressedSmallerThanRaw)
{
    const Profile p = sampleProfile(10000);
    EXPECT_LT(p.encodeCompressed().size(), p.encode().size());
}

TEST(Profile, DecodeRejectsGarbage)
{
    Profile decoded;
    EXPECT_FALSE(Profile::decode({9, 9, 9, 9, 9}, decoded));
}

TEST(Profile, DecodeRejectsTruncated)
{
    auto bytes = sampleProfile().encode();
    bytes.resize(bytes.size() / 2);
    Profile decoded;
    EXPECT_FALSE(Profile::decode(bytes, decoded));
}

TEST(Profile, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "profile_test.mkp";
    const Profile p = sampleProfile();
    ASSERT_TRUE(saveProfile(p, path));
    Profile loaded;
    ASSERT_TRUE(loadProfile(path, loaded));
    EXPECT_EQ(loaded.name, p.name);
    EXPECT_EQ(loaded.totalRequests(), p.totalRequests());
    std::remove(path.c_str());
}

TEST(Profile, LoadMissingFileFails)
{
    Profile p;
    EXPECT_FALSE(loadProfile("/nonexistent/profile.mkp", p));
}

TEST(Profile, EmptyProfileRoundTrips)
{
    Profile p;
    p.name = "empty";
    Profile decoded;
    ASSERT_TRUE(Profile::decode(p.encode(), decoded));
    EXPECT_TRUE(decoded.leaves.empty());
    EXPECT_EQ(decoded.totalRequests(), 0u);
}

} // namespace
