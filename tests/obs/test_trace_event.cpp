#include "obs/trace_event.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/codec.hpp"

namespace
{

using namespace mocktails::obs;

TEST(TraceEvent, StartsEmptyAndDisabled)
{
    EXPECT_EQ(collector(), nullptr);
    TraceEventWriter w;
    EXPECT_EQ(w.size(), 0u);
    EXPECT_EQ(w.dropped(), 0u);
}

TEST(TraceEvent, ScopedCollectorInstallsAndRestores)
{
    TraceEventWriter w;
    {
        ScopedCollector scoped(w);
        EXPECT_EQ(collector(), &w);
        collector()->instant("hello", "test", 10, 0, {});
    }
    EXPECT_EQ(collector(), nullptr);
    EXPECT_EQ(w.size(), 1u);
}

TEST(TraceEvent, RecordsAllPhases)
{
    TraceEventWriter w;
    w.complete("work", "cat", 100, 50, 7, {{"arg", 3}});
    w.instant("mark", "cat", 120, 7, {});
    w.counter("depth", "cat", 130, 42);
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w.events()[0].phase, 'X');
    EXPECT_EQ(w.events()[0].dur, 50u);
    EXPECT_EQ(w.events()[1].phase, 'i');
    EXPECT_EQ(w.events()[2].phase, 'C');
    // The counter carries its value as the "value" arg.
    ASSERT_EQ(w.events()[2].args.size(), 1u);
    EXPECT_EQ(w.events()[2].args[0].second, 42);
}

TEST(TraceEvent, BudgetDropsLossily)
{
    TraceEventWriter w(4);
    for (int i = 0; i < 10; ++i)
        w.instant("e", "cat", static_cast<std::uint64_t>(i), 0, {});
    EXPECT_EQ(w.size(), 4u);
    EXPECT_EQ(w.dropped(), 6u);
    // The drop count surfaces in the JSON so a viewer-loaded file
    // admits its own truncation.
    EXPECT_NE(w.toJson().find("\"dropped\":6"), std::string::npos);
}

TEST(TraceEvent, JsonIsChromeTraceShaped)
{
    TraceEventWriter w;
    w.nameTrack(5, "my track");
    w.complete("R", "dram", 1000, 12, 5, {{"bank", 3}});
    w.instant("l1_miss", "cache", 1500, 900,
              {{"addr", 0x1000}});
    const std::string json = w.toJson();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"my track\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":12"), std::string::npos);
    EXPECT_NE(json.find("\"bank\":3"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1500"), std::string::npos);
    // Instants are scoped to their thread/track.
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceEvent, JsonEscapesStrings)
{
    TraceEventWriter w;
    w.nameTrack(1, "quote\"back\\slash");
    const std::string json = w.toJson();
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(TraceEvent, NameTrackDedupesByTid)
{
    TraceEventWriter w;
    w.nameTrack(3, "first");
    w.nameTrack(3, "second");
    const std::string json = w.toJson();
    EXPECT_EQ(json.find("first"), std::string::npos);
    EXPECT_NE(json.find("second"), std::string::npos);
}

TEST(TraceEvent, BinaryRoundTrip)
{
    TraceEventWriter w;
    w.nameTrack(2, "dram channel 1");
    for (int i = 0; i < 100; ++i) {
        w.complete("R", "dram", 100 + 7 * static_cast<std::uint64_t>(i),
                   5, 2, {{"bank", i % 8}, {"row", i % 2}});
    }
    w.counter("merge_depth", "synthesis", 900, 17);

    TraceEventWriter out;
    ASSERT_TRUE(TraceEventWriter::decode(w.encode(), out));
    ASSERT_EQ(out.size(), w.size());
    EXPECT_EQ(out.dropped(), w.dropped());
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(out.events()[i].phase, w.events()[i].phase);
        EXPECT_EQ(out.events()[i].ts, w.events()[i].ts);
        EXPECT_EQ(out.events()[i].dur, w.events()[i].dur);
        EXPECT_EQ(out.events()[i].tid, w.events()[i].tid);
        EXPECT_EQ(out.events()[i].args, w.events()[i].args);
        EXPECT_EQ(out.internedString(out.events()[i].name),
                  w.internedString(w.events()[i].name));
    }
    // Same viewer-facing document either way.
    EXPECT_EQ(out.toJson(), w.toJson());
}

TEST(TraceEvent, DecodeRejectsGarbage)
{
    TraceEventWriter out;
    EXPECT_FALSE(TraceEventWriter::decode({1, 2, 3, 4, 5}, out));
    std::vector<std::uint8_t> truncated;
    {
        TraceEventWriter w;
        w.instant("x", "y", 1, 0, {});
        truncated = w.encode();
    }
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(TraceEventWriter::decode(truncated, out));
}

TEST(TraceEvent, BinaryIsSmallerThanJson)
{
    TraceEventWriter w;
    for (int i = 0; i < 1000; ++i)
        w.instant("req", "synthesis",
                  static_cast<std::uint64_t>(i) * 13, 1000,
                  {{"leaf", i % 5}});
    EXPECT_LT(w.encode().size(), w.toJson().size() / 4);
}

TEST(TraceEvent, SaveFilesRoundTrip)
{
    const std::string json_path =
        testing::TempDir() + "obs_events.json";
    const std::string bin_path = testing::TempDir() + "obs_events.bin";
    TraceEventWriter w;
    w.complete("work", "test", 10, 5, 0, {});
    ASSERT_TRUE(w.saveJson(json_path));
    ASSERT_TRUE(w.saveBinary(bin_path));

    std::FILE *f = std::fopen(json_path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[16] = {};
    ASSERT_EQ(std::fread(buf, 1, 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(buf[0], '{'); // a JSON object, not the binary form

    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(mocktails::util::loadBytes(bin_path, bytes));
    TraceEventWriter out;
    EXPECT_TRUE(TraceEventWriter::decode(bytes, out));
    EXPECT_EQ(out.size(), 1u);

    std::remove(json_path.c_str());
    std::remove(bin_path.c_str());
}

} // namespace
