#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "obs/trace_event.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;

core::Profile
makeProfile(std::size_t requests = 12000)
{
    const mem::Trace trace = workloads::makeHevc(requests, 1, 2);
    return core::buildProfile(
        trace, core::PartitionConfig::twoLevelTsByRequests(2000));
}

TEST(Provenance, FeatureModeNames)
{
    EXPECT_STREQ(obs::toString(obs::FeatureMode::Absent), "-");
    EXPECT_STREQ(obs::toString(obs::FeatureMode::Constant), "const");
    EXPECT_STREQ(obs::toString(obs::FeatureMode::Markov), "markov");
    EXPECT_STREQ(obs::toString(obs::FeatureMode::Other), "other");
}

TEST(Provenance, OriginsAlignWithOutputTrace)
{
    const core::Profile profile = makeProfile();
    obs::ProvenanceTable table;
    const mem::Trace synth = core::synthesize(profile, 7, 1, &table);

    ASSERT_EQ(table.origins().size(), synth.size());
    ASSERT_EQ(table.leaves().size(), profile.leaves.size());

    // Each origin names a real leaf, and each leaf emits exactly the
    // request count its model promises.
    const std::vector<std::uint64_t> per_leaf = table.requestsPerLeaf();
    ASSERT_EQ(per_leaf.size(), profile.leaves.size());
    for (std::size_t i = 0; i < profile.leaves.size(); ++i) {
        EXPECT_EQ(per_leaf[i], profile.leaves[i].count)
            << "leaf " << i;
        EXPECT_EQ(table.leaves()[i].count, profile.leaves[i].count);
        EXPECT_EQ(table.leaves()[i].addrLo, profile.leaves[i].addrLo);
        EXPECT_EQ(table.leaves()[i].addrHi, profile.leaves[i].addrHi);
    }

    // Every emitted request stays inside its origin leaf's region
    // (that is exactly what the address-wrap logic guarantees), so a
    // mislabelled origin would show up as an out-of-range address.
    for (std::size_t i = 0; i < synth.size(); ++i) {
        const obs::LeafProvenance &leaf =
            table.leaves()[table.origins()[i].leaf];
        if (leaf.addrLo == leaf.addrHi)
            continue; // degenerate region pins to addrLo
        EXPECT_GE(synth[i].addr, leaf.addrLo) << "request " << i;
        EXPECT_LT(synth[i].addr, leaf.addrHi) << "request " << i;
    }
}

TEST(Provenance, DeltaStatesOnlyFromMarkovDeltaModels)
{
    const core::Profile profile = makeProfile();
    obs::ProvenanceTable table;
    core::synthesize(profile, 7, 1, &table);

    std::vector<bool> first_seen(profile.leaves.size(), false);
    bool any_markov_state = false;
    for (const obs::RequestOrigin &origin : table.origins()) {
        const obs::LeafProvenance &leaf = table.leaves()[origin.leaf];
        if (!first_seen[origin.leaf]) {
            // A leaf's first request has no inter-arrival delta.
            EXPECT_EQ(origin.deltaState, -1);
            first_seen[origin.leaf] = true;
            continue;
        }
        if (leaf.deltaTime != obs::FeatureMode::Markov) {
            EXPECT_EQ(origin.deltaState, -1);
        } else if (origin.deltaState >= 0) {
            any_markov_state = true;
        }
    }
    // The workload is irregular enough that some leaf fits a Markov
    // delta model; otherwise this test would vacuously pass.
    EXPECT_TRUE(any_markov_state);
}

TEST(Provenance, CollectionDoesNotPerturbSynthesis)
{
    const core::Profile profile = makeProfile();
    const mem::Trace plain = core::synthesize(profile, 42, 1);

    obs::ProvenanceTable table;
    const mem::Trace tracked = core::synthesize(profile, 42, 1, &table);
    EXPECT_EQ(plain.requests(), tracked.requests());

    // Same with the trace-event collector installed: recording is
    // observation only.
    obs::TraceEventWriter writer;
    mem::Trace observed;
    {
        obs::ScopedCollector scoped(writer);
        observed = core::synthesize(profile, 42, 1);
    }
    EXPECT_EQ(plain.requests(), observed.requests());
    EXPECT_GT(writer.size(), 0u);
}

TEST(Provenance, ShardedSynthesisYieldsIdenticalProvenance)
{
    const core::Profile profile = makeProfile();
    obs::ProvenanceTable sequential;
    const mem::Trace seq = core::synthesize(profile, 5, 1, &sequential);
    obs::ProvenanceTable sharded;
    const mem::Trace par = core::synthesize(profile, 5, 4, &sharded);

    EXPECT_EQ(seq.requests(), par.requests());
    ASSERT_EQ(sequential.origins().size(), sharded.origins().size());
    for (std::size_t i = 0; i < sequential.origins().size(); ++i) {
        EXPECT_EQ(sequential.origins()[i].leaf,
                  sharded.origins()[i].leaf)
            << "at " << i;
        EXPECT_EQ(sequential.origins()[i].deltaState,
                  sharded.origins()[i].deltaState)
            << "at " << i;
    }
}

TEST(Provenance, TableClearsBetweenRuns)
{
    const core::Profile profile = makeProfile(4000);
    obs::ProvenanceTable table;
    core::synthesize(profile, 1, 1, &table);
    const std::size_t first = table.origins().size();
    core::synthesize(profile, 2, 1, &table);
    EXPECT_EQ(table.origins().size(), first);
}

} // namespace
