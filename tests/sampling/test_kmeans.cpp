#include "sampling/kmeans.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::sampling;

/** Three well-separated blobs of @p per points each. */
std::vector<FeatureVector>
threeBlobs(std::size_t per, std::uint64_t seed = 7)
{
    util::Rng rng(seed);
    std::vector<FeatureVector> points;
    const double centers[3][2] = {{0.0, 0.0}, {40.0, 0.0}, {0.0, 40.0}};
    for (int blob = 0; blob < 3; ++blob) {
        for (std::size_t i = 0; i < per; ++i) {
            FeatureVector p;
            p[0] = centers[blob][0] + rng.uniform();
            p[1] = centers[blob][1] + rng.uniform();
            points.push_back(p);
        }
    }
    return points;
}

bool
sameResult(const KMeansResult &a, const KMeansResult &b)
{
    if (a.k != b.k || a.assignment != b.assignment ||
        a.sizes != b.sizes ||
        a.meanSilhouette != b.meanSilhouette)
        return false;
    for (std::size_t c = 0; c < a.centroids.size(); ++c)
        for (std::size_t d = 0; d < kFeatureDims; ++d)
            if (a.centroids[c][d] != b.centroids[c][d])
                return false;
    return true;
}

TEST(KMeans, RecoversSeparatedBlobsWithFixedK)
{
    const auto points = threeBlobs(50);
    KMeansOptions options;
    options.k = 3;
    options.threads = 1;
    const KMeansResult result = cluster(points, options);
    ASSERT_EQ(result.k, 3u);
    // Every blob lands in exactly one cluster.
    for (int blob = 0; blob < 3; ++blob) {
        const std::uint32_t c = result.assignment[blob * 50];
        for (std::size_t i = 0; i < 50; ++i)
            EXPECT_EQ(result.assignment[blob * 50 + i], c);
    }
    EXPECT_EQ(result.sizes[0] + result.sizes[1] + result.sizes[2],
              150u);
    EXPECT_GT(result.meanSilhouette, 0.9);
}

TEST(KMeans, SilhouetteSearchFindsThree)
{
    const auto points = threeBlobs(40);
    KMeansOptions options; // k = 0: silhouette-guided
    options.threads = 1;
    const KMeansResult result = cluster(points, options);
    EXPECT_EQ(result.k, 3u);
}

TEST(KMeans, BitIdenticalAcrossThreadCounts)
{
    const auto points = threeBlobs(120);
    KMeansOptions base;
    base.k = 4;
    base.threads = 1;
    const KMeansResult reference = cluster(points, base);
    for (const unsigned threads : {4u, 8u}) {
        KMeansOptions options = base;
        options.threads = threads;
        EXPECT_TRUE(sameResult(reference, cluster(points, options)))
            << "diverged at " << threads << " threads";
    }
}

TEST(KMeans, RepeatedRunsWithTheSameSeedAgree)
{
    const auto points = threeBlobs(80);
    KMeansOptions options;
    options.seed = 99;
    const KMeansResult a = cluster(points, options);
    const KMeansResult b = cluster(points, options);
    EXPECT_TRUE(sameResult(a, b));
}

TEST(KMeans, SubsampledFitStaysDeterministicAndCoversAllPoints)
{
    const auto points = threeBlobs(400); // 1200 points
    KMeansOptions options;
    options.k = 3;
    options.maxFitPoints = 100; // force the subsample path
    options.threads = 1;
    const KMeansResult reference = cluster(points, options);
    ASSERT_EQ(reference.assignment.size(), points.size());
    std::uint64_t covered = 0;
    for (const std::uint64_t s : reference.sizes)
        covered += s;
    EXPECT_EQ(covered, points.size());
    // The blobs are far apart, so even a strided fit separates them.
    EXPECT_GT(reference.meanSilhouette, 0.9);

    for (const unsigned threads : {4u, 8u}) {
        KMeansOptions par = options;
        par.threads = threads;
        EXPECT_TRUE(sameResult(reference, cluster(points, par)));
    }
}

TEST(KMeans, KClampsToThePointCount)
{
    const auto points = threeBlobs(1); // 3 points
    KMeansOptions options;
    options.k = 12;
    const KMeansResult result = cluster(points, options);
    EXPECT_EQ(result.k, 3u);
}

TEST(KMeans, DegenerateInputs)
{
    EXPECT_EQ(cluster({}, KMeansOptions{}).k, 0u);

    std::vector<FeatureVector> one(1);
    const KMeansResult single = cluster(one, KMeansOptions{});
    EXPECT_EQ(single.k, 1u);
    EXPECT_EQ(single.assignment, std::vector<std::uint32_t>{0});

    // All-identical points: every point ends up in one cluster of a
    // degenerate clustering without crashing or looping.
    std::vector<FeatureVector> same(50);
    KMeansOptions options;
    options.k = 3;
    const KMeansResult flat = cluster(same, options);
    std::uint64_t covered = 0;
    for (const std::uint64_t s : flat.sizes)
        covered += s;
    EXPECT_EQ(covered, 50u);
}

} // namespace
