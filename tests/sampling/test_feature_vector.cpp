#include "sampling/feature_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model_generator.hpp"
#include "core/partition.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::sampling;

core::Profile
smallProfile(std::size_t requests = 8000)
{
    const mem::Trace trace = workloads::makeFbcTiled(requests, 1, 1);
    return core::buildProfile(trace,
                              core::PartitionConfig::twoLevelTs(50000));
}

TEST(FeatureVector, DimensionNamesCoverEveryIndex)
{
    for (std::size_t i = 0; i < kFeatureDims; ++i) {
        ASSERT_NE(featureName(i), nullptr);
        EXPECT_GT(std::string(featureName(i)).size(), 0u);
    }
}

TEST(FeatureVector, LeafSignaturesAreFinite)
{
    const core::Profile profile = smallProfile();
    ASSERT_FALSE(profile.leaves.empty());
    for (const core::LeafModel &leaf : profile.leaves) {
        const FeatureVector sig = leafSignature(leaf);
        for (std::size_t d = 0; d < kFeatureDims; ++d)
            EXPECT_TRUE(std::isfinite(sig[d]))
                << featureName(d) << " is not finite";
        // Op mix is a fraction.
        EXPECT_GE(sig[2], 0.0);
        EXPECT_LE(sig[2], 1.0);
        // Volume tracks the leaf's request count.
        EXPECT_NEAR(sig[1], std::log2(1.0 + double(leaf.count)), 1e-9);
    }
}

TEST(FeatureVector, BatchSignatureMeasuresTheInterval)
{
    // 64 sequential 64B reads: stride 64, no reuse, pure-read mix.
    mem::RequestBatch batch;
    for (std::uint64_t i = 0; i < 64; ++i)
        batch.push(mem::Tick(i * 4), 0x1000 + i * 64, 64,
                   mem::Op::Read);
    const FeatureVector sig = batchSignature(batch, 0, batch.size());
    EXPECT_NEAR(sig[2], 1.0, 1e-9);                   // all reads
    EXPECT_NEAR(sig[3], std::log2(65.0), 1e-9);       // size 64
    EXPECT_NEAR(sig[4], std::log2(65.0), 1e-9);       // stride 64
    EXPECT_NEAR(sig[5], 0.0, 1e-9);                   // one stride value
    EXPECT_NEAR(sig[8], 1.0, 1e-9);                   // no block reuse

    // The same addresses twice: the revisit ratio halves.
    mem::RequestBatch twice;
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t i = 0; i < 64; ++i)
            twice.push(mem::Tick(pass * 256 + i * 4), 0x1000 + i * 64,
                       64, mem::Op::Read);
    const FeatureVector rep = batchSignature(twice, 0, twice.size());
    EXPECT_NEAR(rep[8], 0.5, 1e-9);
    EXPECT_GT(rep[9], 0.0); // a reuse gap now exists
}

TEST(FeatureVector, EmptyIntervalIsZero)
{
    mem::RequestBatch batch;
    const FeatureVector sig = batchSignature(batch, 0, 0);
    for (std::size_t d = 0; d < kFeatureDims; ++d)
        EXPECT_EQ(sig[d], 0.0);
}

TEST(FeatureVector, ProfileSignaturesAreThreadCountInvariant)
{
    const core::Profile profile = smallProfile();
    const auto seq = profileSignatures(profile, 1);
    ASSERT_EQ(seq.size(), profile.leaves.size());
    for (const unsigned threads : {2u, 4u, 8u}) {
        const auto par = profileSignatures(profile, threads);
        ASSERT_EQ(par.size(), seq.size());
        for (std::size_t i = 0; i < seq.size(); ++i)
            for (std::size_t d = 0; d < kFeatureDims; ++d)
                EXPECT_EQ(seq[i][d], par[i][d])
                    << "leaf " << i << " dim " << featureName(d)
                    << " differs at " << threads << " threads";
    }
}

TEST(Standardizer, NormalizesAndIgnoresConstantDims)
{
    std::vector<FeatureVector> points(100);
    for (std::size_t i = 0; i < points.size(); ++i) {
        points[i][0] = double(i);  // varying
        points[i][1] = 42.0;       // constant
    }
    const Standardizer st = Standardizer::fit(points);
    const auto out = st.applyAll(points);

    double mean0 = 0.0;
    for (const FeatureVector &p : out)
        mean0 += p[0];
    mean0 /= double(out.size());
    EXPECT_NEAR(mean0, 0.0, 1e-9);

    // Zero-variance dimensions carry no information and map to 0.
    for (const FeatureVector &p : out)
        EXPECT_EQ(p[1], 0.0);
}

TEST(Standardizer, Distance2IsAMetricSquare)
{
    FeatureVector a;
    FeatureVector b;
    a[0] = 3.0;
    b[0] = 7.0;
    b[4] = 3.0;
    EXPECT_EQ(distance2(a, a), 0.0);
    EXPECT_EQ(distance2(a, b), distance2(b, a));
    EXPECT_NEAR(distance2(a, b), 16.0 + 9.0, 1e-12);
}

} // namespace
