#include "sampling/representative.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "serve/profile_store.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::sampling;

core::Profile
testProfile(std::size_t requests = 20000)
{
    const mem::Trace trace = workloads::makeFbcLinear(requests, 1, 1);
    return core::buildProfile(trace,
                              core::PartitionConfig::twoLevelTs(50000));
}

bool
sameSet(const RepresentativeSet &a, const RepresentativeSet &b)
{
    if (a.k != b.k || a.totalRequests != b.totalRequests ||
        a.meanSilhouette != b.meanSilhouette ||
        a.errorBoundPercent != b.errorBoundPercent ||
        a.clusters.size() != b.clusters.size())
        return false;
    for (std::size_t c = 0; c < a.clusters.size(); ++c) {
        const ClusterInfo &x = a.clusters[c];
        const ClusterInfo &y = b.clusters[c];
        if (x.medoidLeaf != y.medoidLeaf || x.members != y.members ||
            x.requests != y.requests || x.weight != y.weight ||
            x.dispersion != y.dispersion ||
            x.errorBoundPercent != y.errorBoundPercent)
            return false;
    }
    return true;
}

TEST(Representative, SelectionAccountsForEveryLeafAndRequest)
{
    const core::Profile profile = testProfile();
    SamplingOptions options;
    options.k = 4;
    const RepresentativeSet set =
        selectRepresentatives(profile, options);
    ASSERT_GT(set.k, 0u);
    ASSERT_LE(set.k, 4u);

    std::uint64_t requests = 0;
    std::size_t members = 0;
    for (const ClusterInfo &c : set.clusters) {
        requests += c.requests;
        members += c.members.size();
        EXPECT_EQ(c.medoidRequests,
                  profile.leaves[c.medoidLeaf].count);
        if (c.medoidRequests > 0)
            EXPECT_DOUBLE_EQ(c.weight,
                             double(c.requests) /
                                 double(c.medoidRequests));
        EXPECT_GE(c.errorBoundPercent, 7.5); // the floor
        EXPECT_LE(c.errorBoundPercent, set.errorBoundPercent);
    }
    EXPECT_EQ(requests, set.totalRequests);
    EXPECT_EQ(requests, profile.totalRequests());
    EXPECT_EQ(members, profile.leaves.size());

    // Ranked by descending cluster request count.
    for (std::size_t c = 1; c < set.clusters.size(); ++c)
        EXPECT_GE(set.clusters[c - 1].requests,
                  set.clusters[c].requests);
}

TEST(Representative, BitIdenticalAcrossThreadCountsAndRuns)
{
    const core::Profile profile = testProfile();
    SamplingOptions base;
    base.threads = 1;
    const RepresentativeSet reference =
        selectRepresentatives(profile, base);
    EXPECT_TRUE(
        sameSet(reference, selectRepresentatives(profile, base)))
        << "same options, repeated run";
    for (const unsigned threads : {4u, 8u}) {
        SamplingOptions options = base;
        options.threads = threads;
        EXPECT_TRUE(sameSet(reference,
                            selectRepresentatives(profile, options)))
            << "diverged at " << threads << " threads";
    }
}

TEST(Representative, ReducedProfileHoldsTheMedoids)
{
    const core::Profile profile = testProfile();
    SamplingOptions options;
    options.k = 3;
    const RepresentativeSet set =
        selectRepresentatives(profile, options);
    const core::Profile reduced = makeReducedProfile(profile, set);

    EXPECT_EQ(reduced.name, profile.name);
    EXPECT_EQ(reduced.device, profile.device);
    EXPECT_EQ(reduced.config, profile.config);
    ASSERT_EQ(reduced.leaves.size(), set.clusters.size());
    for (std::size_t i = 0; i < reduced.leaves.size(); ++i) {
        const core::LeafModel &medoid =
            profile.leaves[set.clusters[i].medoidLeaf];
        EXPECT_EQ(reduced.leaves[i].count, medoid.count);
        EXPECT_EQ(reduced.leaves[i].startAddr, medoid.startAddr);
        EXPECT_EQ(reduced.leaves[i].addrLo, medoid.addrLo);
        EXPECT_EQ(reduced.leaves[i].addrHi, medoid.addrHi);
    }

    // The clone is deep: synthesis of the reduced profile works and
    // reproduces the medoid-only request count.
    const mem::Trace synth = core::synthesize(reduced);
    EXPECT_EQ(synth.size(), set.representativeRequests());
}

TEST(Representative, ReducedFileRoundTripsWithWeights)
{
    const core::Profile profile = testProfile();
    SamplingOptions options;
    options.k = 3;
    const RepresentativeSet set =
        selectRepresentatives(profile, options);
    const core::Profile reduced = makeReducedProfile(profile, set);

    const std::string path =
        testing::TempDir() + "representative_test.mkp";
    std::string error;
    ASSERT_TRUE(saveReducedProfile(reduced, set, path, &error))
        << error;
    EXPECT_TRUE(isReducedProfile(path));

    // Full load: profile plus the weights table.
    core::Profile loaded;
    ReducedWeights weights;
    ASSERT_TRUE(loadReducedProfile(path, loaded, weights, &error))
        << error;
    EXPECT_EQ(loaded.leaves.size(), set.clusters.size());
    EXPECT_EQ(weights.totalRequests, set.totalRequests);
    EXPECT_EQ(weights.meanSilhouette, set.meanSilhouette);
    ASSERT_EQ(weights.entries.size(), set.clusters.size());
    for (std::size_t i = 0; i < weights.entries.size(); ++i) {
        EXPECT_EQ(weights.entries[i].weight, set.clusters[i].weight);
        EXPECT_EQ(weights.entries[i].requests,
                  set.clusters[i].requests);
        EXPECT_EQ(weights.entries[i].errorBoundPercent,
                  set.clusters[i].errorBoundPercent);
    }

    // Plain loadProfile ignores the trailer: the reduced file is a
    // valid .mkp wherever profiles load.
    core::Profile plain;
    ASSERT_TRUE(core::loadProfile(path, plain, &error)) << error;
    EXPECT_EQ(plain.leaves.size(), reduced.leaves.size());
    EXPECT_EQ(plain.encode(), reduced.encode());

    std::remove(path.c_str());
}

TEST(Representative, ServedReducedProfileSynthesizesByteStably)
{
    const core::Profile profile = testProfile();
    SamplingOptions options;
    options.k = 3;
    const RepresentativeSet set =
        selectRepresentatives(profile, options);
    const core::Profile reduced = makeReducedProfile(profile, set);
    const std::string path =
        testing::TempDir() + "representative_store.mkp";
    ASSERT_TRUE(saveReducedProfile(reduced, set, path));

    // ProfileStore treats the reduced file as any other .mkp, and the
    // served profile synthesises the same bytes as the local one.
    serve::ProfileStore store;
    store.registerProfile("reduced", path);
    std::string error;
    const auto stored = store.get("reduced", &error);
    ASSERT_NE(stored, nullptr) << error;
    const mem::Trace local = core::synthesize(reduced, 1);
    const mem::Trace served = core::synthesize(stored->profile, 1);
    ASSERT_EQ(local.size(), served.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
        EXPECT_EQ(local.requests()[i].tick, served.requests()[i].tick);
        EXPECT_EQ(local.requests()[i].addr, served.requests()[i].addr);
    }

    std::remove(path.c_str());
}

TEST(Representative, OrdinaryProfileHasNoTrailer)
{
    const core::Profile profile = testProfile(4000);
    const std::string path =
        testing::TempDir() + "representative_plain.mkp";
    ASSERT_TRUE(core::saveProfile(profile, path));
    EXPECT_FALSE(isReducedProfile(path));
    core::Profile loaded;
    ReducedWeights weights;
    std::string error;
    EXPECT_FALSE(loadReducedProfile(path, loaded, weights, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(Representative, EmptyProfileYieldsAnEmptySet)
{
    core::Profile profile;
    const RepresentativeSet set = selectRepresentatives(profile);
    EXPECT_EQ(set.k, 0u);
    EXPECT_TRUE(set.clusters.empty());
    EXPECT_EQ(set.representativeRequests(), 0u);
}

} // namespace
