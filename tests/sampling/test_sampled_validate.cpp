#include "sampling/sampled_validate.hpp"

#include <gtest/gtest.h>

#include "core/model_generator.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::sampling;

struct Workbench
{
    mem::Trace trace;
    core::Profile profile;
};

Workbench
bench(std::size_t requests = 30000)
{
    Workbench w;
    w.trace = workloads::makeFbcLinear(requests, 1, 1);
    w.profile = core::buildProfile(
        w.trace, core::PartitionConfig::twoLevelTs(50000));
    return w;
}

TEST(SampledValidate, SimulatesOnlyTheRepresentatives)
{
    const Workbench w = bench();
    SampledValidationOptions options;
    options.sampling.k = 4;
    const SampledValidationReport report =
        validateProfileSampled(w.trace, w.profile, options);

    EXPECT_TRUE(report.matched) << report.note;
    EXPECT_GT(report.set.k, 0u);
    EXPECT_EQ(report.clusters.size(), report.set.clusters.size());
    EXPECT_EQ(report.totalRequests, w.trace.size());
    EXPECT_LT(report.simulatedRequests, report.totalRequests);
    EXPECT_GT(report.simulatedRequests, 0u);

    // The extrapolated report has the full validation's shape.
    EXPECT_EQ(report.report.dramMetrics.size(), 5u);
    EXPECT_EQ(report.report.cacheMetrics.size(), 4u);
}

TEST(SampledValidate, ExtrapolationStaysWithinTheBoundOfFull)
{
    const Workbench w = bench();
    SampledValidationOptions options;
    options.sampling.k = 6;
    const SampledValidationReport sampled =
        validateProfileSampled(w.trace, w.profile, options);
    ASSERT_TRUE(sampled.matched) << sampled.note;

    const validation::ValidationReport full =
        validation::validateProfile(w.trace, w.profile);

    const BoundsCheck check = checkAgainstFull(sampled, full);
    EXPECT_EQ(check.boundPercent, sampled.set.errorBoundPercent);
    EXPECT_EQ(check.lines.size(), 9u);
    EXPECT_TRUE(check.passed)
        << "worst delta " << check.worstDeltaPercent << "% > bound "
        << check.boundPercent << "%";
    EXPECT_LE(check.worstDeltaPercent, check.boundPercent);
}

TEST(SampledValidate, DeterministicAcrossThreadCounts)
{
    const Workbench w = bench(20000);
    SampledValidationOptions base;
    base.sampling.k = 3;
    base.base.threads = 1;
    base.sampling.threads = 1;
    const SampledValidationReport reference =
        validateProfileSampled(w.trace, w.profile, base);
    for (const unsigned threads : {4u, 8u}) {
        SampledValidationOptions options = base;
        options.base.threads = threads;
        options.sampling.threads = threads;
        const SampledValidationReport run =
            validateProfileSampled(w.trace, w.profile, options);
        EXPECT_EQ(reference.report.worstErrorPercent,
                  run.report.worstErrorPercent);
        EXPECT_EQ(reference.report.meanErrorPercent,
                  run.report.meanErrorPercent);
        EXPECT_EQ(reference.simulatedRequests, run.simulatedRequests);
        ASSERT_EQ(reference.set.clusters.size(),
                  run.set.clusters.size());
        for (std::size_t c = 0; c < reference.set.clusters.size();
             ++c)
            EXPECT_EQ(reference.set.clusters[c].medoidLeaf,
                      run.set.clusters[c].medoidLeaf);
    }
}

TEST(SampledValidate, JsonCarriesTheSamplingBlock)
{
    const Workbench w = bench(15000);
    SampledValidationOptions options;
    options.sampling.k = 3;
    const SampledValidationReport report =
        validateProfileSampled(w.trace, w.profile, options);
    const std::string json = sampledReportToJson(report);

    EXPECT_NE(json.find("\"sampling\":{"), std::string::npos);
    EXPECT_NE(json.find("\"matched\":true"), std::string::npos);
    EXPECT_NE(json.find("\"k\":"), std::string::npos);
    EXPECT_NE(json.find("\"mean_silhouette\":"), std::string::npos);
    EXPECT_NE(json.find("\"simulated_requests\":"), std::string::npos);
    EXPECT_NE(json.find("\"error_bound_percent\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"clusters\":["), std::string::npos);
    EXPECT_NE(json.find("\"medoid_leaf\":"), std::string::npos);
    EXPECT_EQ(json.back(), '}');

    // Text rendering mentions the sampling summary too.
    const std::string text = formatSampledReport(report);
    EXPECT_NE(text.find("sampling: k="), std::string::npos);
}

TEST(SampledValidate, MismatchedHierarchyFallsBackToFull)
{
    // Validate against a profile built from a different trace: the
    // baseline re-partition cannot match leaf-for-leaf, so the run
    // falls back to full validation and says so.
    const Workbench w = bench(15000);
    const mem::Trace other = workloads::makeDmaCopy(9000, 3);
    const SampledValidationReport report =
        validateProfileSampled(other, w.profile);
    EXPECT_FALSE(report.matched);
    EXPECT_FALSE(report.note.empty());
    // The fallback still produces a usable report.
    EXPECT_EQ(report.report.dramMetrics.size(), 5u);
    const std::string json = sampledReportToJson(report);
    EXPECT_NE(json.find("\"matched\":false"), std::string::npos);
}

TEST(SampledValidate, ClusterAttributionAggregatesLeaves)
{
    const Workbench w = bench();
    SampledValidationOptions options;
    options.sampling.k = 4;
    const SampledValidationReport report =
        validateProfileSampled(w.trace, w.profile, options);
    ASSERT_TRUE(report.matched) << report.note;

    validation::AttributionOptions aopts;
    aopts.maxLeaves = w.profile.leaves.size(); // keep every leaf
    const validation::AttributionReport attribution =
        validation::attributeErrors(w.trace, w.profile, aopts);
    ASSERT_TRUE(attribution.hierarchyMatched) << attribution.note;

    const std::vector<ClusterAttribution> rows =
        attributeClusters(attribution, report.set);
    ASSERT_EQ(rows.size(), report.set.clusters.size());
    std::uint64_t leaves = 0;
    for (const ClusterAttribution &row : rows)
        leaves += row.leaves;
    EXPECT_EQ(leaves, w.profile.leaves.size());
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_GE(rows[i - 1].worstErrorPercent,
                  rows[i].worstErrorPercent);

    const std::string md = clusterAttributionToMarkdown(rows);
    EXPECT_NE(md.find("| cluster |"), std::string::npos);
}

} // namespace
