/**
 * @file
 * Property tests: invariants that must hold for every (workload,
 * hierarchy) combination, swept with parameterised gtest.
 *
 * These pin down the guarantees the paper's mechanisms provide:
 * request-count conservation through partitioning and synthesis,
 * exact read/write and size multisets under strict convergence,
 * monotonic synthetic timestamps, and address containment within the
 * original trace's (leaf-extended) address range.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/model_generator.hpp"
#include "core/partition.hpp"
#include "core/synthesis.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;

constexpr std::size_t traceLen = 8000;

struct ConfigCase
{
    const char *label;
    core::PartitionConfig config;
};

std::vector<ConfigCase>
configCases()
{
    using Kind = core::PartitionLayer::Kind;
    return {
        {"2L_TS_cycles", core::PartitionConfig::twoLevelTs(200000)},
        {"2L_TS_requests",
         core::PartitionConfig::twoLevelTsByRequests(1000)},
        {"2L_TS_fixed4K",
         core::PartitionConfig::twoLevelTsFixed(1000, 4096)},
        {"spatial_first",
         core::PartitionConfig{{{Kind::SpatialDynamic, 0},
                                {Kind::TemporalRequestCount, 500}}}},
        {"three_level",
         core::PartitionConfig{{{Kind::TemporalCycleCount, 1000000},
                                {Kind::SpatialFixed, 65536},
                                {Kind::SpatialDynamic, 0}}}},
    };
}

using Param = std::tuple<std::string, std::size_t>; // workload, config

class PipelineProperty : public ::testing::TestWithParam<Param>
{
  protected:
    mem::Trace
    trace() const
    {
        return workloads::makeDeviceTrace(std::get<0>(GetParam()),
                                          traceLen, 1);
    }

    const core::PartitionConfig &
    config() const
    {
        static const auto cases = configCases();
        return cases[std::get<1>(GetParam())].config;
    }
};

TEST_P(PipelineProperty, LeavesPartitionTheTrace)
{
    const mem::Trace t = trace();
    const auto leaves = core::buildLeaves(t, config());
    std::size_t total = 0;
    for (const auto &leaf : leaves) {
        ASSERT_FALSE(leaf.requests.empty());
        ASSERT_LT(leaf.addrLo, leaf.addrHi);
        total += leaf.requests.size();
        // Every request honours the leaf's address bounds, and
        // requests stay in time order.
        for (std::size_t i = 0; i < leaf.requests.size(); ++i) {
            EXPECT_GE(leaf.requests[i].addr, leaf.addrLo);
            EXPECT_LE(leaf.requests[i].end(), leaf.addrHi);
            if (i > 0) {
                EXPECT_GE(leaf.requests[i].tick,
                          leaf.requests[i - 1].tick);
            }
        }
    }
    EXPECT_EQ(total, t.size());
}

TEST_P(PipelineProperty, SynthesisConservesCountsAndMultisets)
{
    const mem::Trace t = trace();
    const core::Profile profile = core::buildProfile(t, config());
    const mem::Trace synth = core::synthesize(profile, 5);

    ASSERT_EQ(synth.size(), t.size());

    std::uint64_t reads = 0, synth_reads = 0;
    std::map<std::uint32_t, std::uint64_t> sizes, synth_sizes;
    for (const auto &r : t) {
        reads += r.isRead();
        ++sizes[r.size];
    }
    for (const auto &r : synth) {
        synth_reads += r.isRead();
        ++synth_sizes[r.size];
    }
    EXPECT_EQ(synth_reads, reads);
    EXPECT_EQ(synth_sizes, sizes);
}

TEST_P(PipelineProperty, SyntheticStreamIsTimeOrdered)
{
    const core::Profile profile =
        core::buildProfile(trace(), config());
    EXPECT_TRUE(core::synthesize(profile, 6).isTimeOrdered());
}

TEST_P(PipelineProperty, SyntheticAddressesStayInLeafRanges)
{
    const core::Profile profile =
        core::buildProfile(trace(), config());

    mem::Addr lo = ~mem::Addr{0}, hi = 0;
    for (const auto &leaf : profile.leaves) {
        lo = std::min(lo, leaf.addrLo);
        hi = std::max(hi, leaf.addrHi);
    }

    const mem::Trace synth = core::synthesize(profile, 7);
    for (const auto &r : synth) {
        ASSERT_GE(r.addr, lo);
        ASSERT_LT(r.addr, hi);
    }
}

TEST_P(PipelineProperty, ProfileRoundTripsThroughBytes)
{
    const core::Profile profile =
        core::buildProfile(trace(), config());
    core::Profile decoded;
    ASSERT_TRUE(core::Profile::decodeCompressed(
        profile.encodeCompressed(), decoded));
    EXPECT_EQ(decoded.leaves.size(), profile.leaves.size());
    EXPECT_EQ(decoded.totalRequests(), profile.totalRequests());
    // Decoded profiles synthesise identical streams.
    const mem::Trace a = core::synthesize(profile, 8);
    const mem::Trace b = core::synthesize(decoded, 8);
    for (std::size_t i = 0; i < a.size(); i += 101)
        ASSERT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Combine(::testing::Values("Crypto1", "CPU-V",
                                         "FBC-Tiled1", "Multi-layer",
                                         "T-Rex2", "OpenCL1", "HEVC2"),
                       ::testing::Range<std::size_t>(0, 5)),
    [](const ::testing::TestParamInfo<Param> &info) {
        static const auto cases = configCases();
        std::string name = std::get<0>(info.param) + "_" +
                           cases[std::get<1>(info.param)].label;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
