/**
 * @file
 * Decoder robustness: random and mutated byte buffers must never
 * crash the trace/profile/compression decoders — they either decode
 * or cleanly report failure. Profiles are the artefact exchanged
 * between organisations (paper Fig. 1), so hostile input is a real
 * concern.
 */

#include <gtest/gtest.h>

#include "core/model_generator.hpp"
#include "core/profile.hpp"
#include "mem/trace_io.hpp"
#include "util/compress.hpp"
#include "util/rng.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;

std::vector<std::uint8_t>
randomBytes(util::Rng &rng, std::size_t n)
{
    std::vector<std::uint8_t> bytes(n);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng());
    return bytes;
}

TEST(DecodeRobustness, RandomBuffersNeverCrashTraceDecode)
{
    util::Rng rng(101);
    for (int trial = 0; trial < 200; ++trial) {
        mem::Trace trace;
        (void)decodeTrace(randomBytes(rng, 1 + rng.below(512)), trace);
    }
}

TEST(DecodeRobustness, RandomBuffersNeverCrashProfileDecode)
{
    util::Rng rng(102);
    for (int trial = 0; trial < 200; ++trial) {
        core::Profile profile;
        (void)core::Profile::decode(
            randomBytes(rng, 1 + rng.below(512)), profile);
        (void)core::Profile::decodeCompressed(
            randomBytes(rng, 1 + rng.below(512)), profile);
    }
}

TEST(DecodeRobustness, RandomBuffersNeverCrashDecompress)
{
    util::Rng rng(103);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> out;
        (void)util::decompress(randomBytes(rng, 1 + rng.below(512)),
                               out);
    }
}

TEST(DecodeRobustness, SingleByteMutationsOfValidTrace)
{
    const mem::Trace trace =
        workloads::makeSpecTrace("hmmer", 500, 1);
    const auto good = mem::encodeTrace(trace);

    util::Rng rng(104);
    for (int trial = 0; trial < 300; ++trial) {
        auto bytes = good;
        bytes[rng.below(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
        mem::Trace out;
        // Decoding may succeed (the mutation may hit a value field)
        // or fail, but must never crash; a success must be
        // structurally sane.
        if (decodeTrace(bytes, out))
            EXPECT_LE(out.size(), trace.size() * 2 + 16);
    }
}

TEST(DecodeRobustness, SingleByteMutationsOfValidProfile)
{
    const mem::Trace trace =
        workloads::makeSpecTrace("povray", 500, 1);
    const core::Profile profile = core::buildProfile(
        trace, core::PartitionConfig::twoLevelTsByRequests(100));
    const auto good = profile.encode();

    util::Rng rng(105);
    for (int trial = 0; trial < 300; ++trial) {
        auto bytes = good;
        bytes[rng.below(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
        core::Profile out;
        (void)core::Profile::decode(bytes, out);
    }
}

TEST(DecodeRobustness, TruncationsOfValidProfile)
{
    const core::Profile profile = core::buildProfile(
        workloads::makeSpecTrace("namd", 400, 1),
        core::PartitionConfig::twoLevelTsByRequests(100));
    const auto good = profile.encodeCompressed();

    for (std::size_t cut = 0; cut < good.size();
         cut += 1 + good.size() / 64) {
        auto bytes = good;
        bytes.resize(cut);
        core::Profile out;
        EXPECT_FALSE(core::Profile::decodeCompressed(bytes, out))
            << "cut=" << cut;
    }
}

} // namespace
