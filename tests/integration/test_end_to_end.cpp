/**
 * @file
 * End-to-end pipeline tests: workload -> profile -> synthesis -> DRAM
 * or cache simulation, checking that the synthetic stream reproduces
 * the original's memory behaviour (the paper's whole premise).
 */

#include <gtest/gtest.h>

#include "baselines/stm.hpp"
#include "cache/hierarchy.hpp"
#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "mem/trace_io.hpp"
#include "util/stats.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;

constexpr std::size_t traceLen = 30000;

struct Comparison
{
    dram::SimulationResult baseline;
    dram::SimulationResult synthetic;
};

Comparison
compareOnDram(const mem::Trace &trace,
              const core::PartitionConfig &config)
{
    Comparison out;
    out.baseline = dram::simulateTrace(trace);
    const core::Profile profile = core::buildProfile(trace, config);
    const mem::Trace synth = core::synthesize(profile, 1);
    out.synthetic = dram::simulateTrace(synth);
    return out;
}

TEST(EndToEnd, BurstCountsMatchExactly)
{
    // Strict convergence on sizes + exact request counts mean the
    // total burst counts line up to within address-alignment noise.
    const mem::Trace trace =
        workloads::makeFbcLinear(traceLen, 1, 1);
    const auto cmp =
        compareOnDram(trace, core::PartitionConfig::twoLevelTs());

    EXPECT_LT(util::percentError(
                  static_cast<double>(cmp.synthetic.readBursts()),
                  static_cast<double>(cmp.baseline.readBursts())),
              5.0);
    EXPECT_LT(util::percentError(
                  static_cast<double>(cmp.synthetic.writeBursts()),
                  static_cast<double>(cmp.baseline.writeBursts())),
              5.0);
}

TEST(EndToEnd, DpuRowHitsAccuratelyReproduced)
{
    const mem::Trace trace = workloads::makeFbcTiled(traceLen, 1, 1);
    const auto cmp =
        compareOnDram(trace, core::PartitionConfig::twoLevelTs());

    EXPECT_LT(util::percentError(
                  static_cast<double>(cmp.synthetic.readRowHits()),
                  static_cast<double>(cmp.baseline.readRowHits())),
              15.0);
    EXPECT_LT(util::percentError(
                  static_cast<double>(cmp.synthetic.writeRowHits()),
                  static_cast<double>(cmp.baseline.writeRowHits())),
              15.0);
}

TEST(EndToEnd, VpuLatencyReproduced)
{
    const mem::Trace trace = workloads::makeHevc(traceLen, 1, 1);
    const auto cmp =
        compareOnDram(trace, core::PartitionConfig::twoLevelTs());
    EXPECT_LT(util::percentError(cmp.synthetic.avgReadLatency(),
                                 cmp.baseline.avgReadLatency()),
              10.0);
}

TEST(EndToEnd, GpuQueueLengthsReproduced)
{
    const mem::Trace trace = workloads::makeTRex(traceLen, 1, 1);
    const auto cmp =
        compareOnDram(trace, core::PartitionConfig::twoLevelTs());
    // Queue lengths integrate all four features; allow a loose band.
    EXPECT_LT(std::abs(cmp.synthetic.avgWriteQueueLength() -
                       cmp.baseline.avgWriteQueueLength()),
              0.35 * std::max(1.0, cmp.baseline.avgWriteQueueLength()));
}

TEST(EndToEnd, PerBankDistributionReproduced)
{
    const mem::Trace trace =
        workloads::makeFbcLinear(traceLen, 1, 1);
    const auto cmp =
        compareOnDram(trace, core::PartitionConfig::twoLevelTs());
    ASSERT_EQ(cmp.baseline.channels.size(),
              cmp.synthetic.channels.size());

    // Banks that the baseline leaves untouched should stay near-idle
    // in the synthetic run, and per-bank totals should correlate.
    for (std::size_t c = 0; c < cmp.baseline.channels.size(); ++c) {
        const auto &base = cmp.baseline.channels[c];
        const auto &synth = cmp.synthetic.channels[c];
        std::uint64_t base_total = 0, synth_total = 0;
        for (std::size_t b = 0; b < base.perBankReadBursts.size();
             ++b) {
            base_total += base.perBankReadBursts[b];
            synth_total += synth.perBankReadBursts[b];
        }
        EXPECT_LT(util::percentError(
                      static_cast<double>(synth_total),
                      static_cast<double>(base_total)),
                  10.0);
    }
}

TEST(EndToEnd, McCBeatsStmOnOperationStructure)
{
    // Paper Figs. 9-11: McC models read/write interleaving; STM's
    // single-probability operation model degrades write row locality.
    const mem::Trace trace =
        workloads::makeFbcLinear(traceLen, 1, 1);
    const auto baseline = dram::simulateTrace(trace);

    const auto config = core::PartitionConfig::twoLevelTs();
    const mem::Trace mcc_synth =
        core::synthesize(core::buildProfile(trace, config), 1);
    const mem::Trace stm_synth = core::synthesize(
        core::buildProfile(trace, config, baselines::stmHooks()), 1);

    const auto mcc = dram::simulateTrace(mcc_synth);
    const auto stm = dram::simulateTrace(stm_synth);

    const double mcc_err = util::percentError(
        static_cast<double>(mcc.writeRowHits()),
        static_cast<double>(baseline.writeRowHits()));
    const double stm_err = util::percentError(
        static_cast<double>(stm.writeRowHits()),
        static_cast<double>(baseline.writeRowHits()));
    EXPECT_LE(mcc_err, stm_err + 1.0);
}

TEST(EndToEnd, CacheMissRatesReproducedForSpecWorkload)
{
    // The Sec. V experiment in miniature.
    const mem::Trace trace =
        workloads::makeSpecTrace("gobmk", 60000, 1);
    const core::Profile profile = core::buildProfile(
        trace, core::PartitionConfig::twoLevelTsByRequests(10000));
    const mem::Trace synth = core::synthesize(profile, 1);

    cache::HierarchyConfig config;
    config.l1 = cache::CacheConfig{16 * 1024, 2, 64};
    cache::Hierarchy base_h(config);
    base_h.run(trace);
    cache::Hierarchy synth_h(config);
    synth_h.run(synth);

    EXPECT_NEAR(synth_h.l1Stats().missRate(),
                base_h.l1Stats().missRate(), 0.05);
    const double fp_err = util::percentError(
        static_cast<double>(synth_h.footprintBlocks()),
        static_cast<double>(base_h.footprintBlocks()));
    EXPECT_LT(fp_err, 15.0);
}

TEST(EndToEnd, ProfileSmallerThanTrace)
{
    // Fig. 17's headline: profiles are much smaller than traces.
    const mem::Trace trace =
        workloads::makeSpecTrace("hmmer", 100000, 1);
    const core::Profile profile = core::buildProfile(
        trace, core::PartitionConfig::twoLevelTsByRequests(10000));
    const auto trace_bytes = mem::encodeTrace(trace);
    const auto profile_bytes = profile.encodeCompressed();
    EXPECT_LT(profile_bytes.size(), trace_bytes.size());
}

TEST(EndToEnd, SerializedProfileSynthesisesIdentically)
{
    // Industry ships the profile file; academia synthesises from it
    // (Fig. 1). The round trip must not change the synthetic stream.
    const mem::Trace trace = workloads::makeCpuD(10000, 1);
    const core::Profile profile = core::buildProfile(
        trace, core::PartitionConfig::twoLevelTs());
    core::Profile decoded;
    ASSERT_TRUE(core::Profile::decodeCompressed(
        profile.encodeCompressed(), decoded));

    const mem::Trace a = core::synthesize(profile, 9);
    const mem::Trace b = core::synthesize(decoded, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 7)
        EXPECT_EQ(a[i], b[i]);
}

} // namespace
