#include "interconnect/crossbar.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace
{

using namespace mocktails;
using namespace mocktails::interconnect;

mem::Request
req(mem::Tick tick, mem::Addr addr)
{
    return mem::Request{tick, addr, 64, mem::Op::Read};
}

TEST(Crossbar, DeliversAfterLatency)
{
    sim::EventQueue events;
    std::vector<std::pair<sim::Tick, mem::Addr>> arrivals;
    CrossbarConfig config;
    config.latency = 8;
    Crossbar xbar(events, config, [&](const mem::Request &r) {
        arrivals.emplace_back(events.now(), r.addr);
        return true;
    });

    ASSERT_TRUE(xbar.trySend(req(0, 0x100)));
    events.run();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0].first, 8u);
    EXPECT_EQ(arrivals[0].second, 0x100u);
    EXPECT_TRUE(xbar.idle());
}

TEST(Crossbar, PreservesOrder)
{
    sim::EventQueue events;
    std::vector<mem::Addr> arrivals;
    Crossbar xbar(events, CrossbarConfig{}, [&](const mem::Request &r) {
        arrivals.push_back(r.addr);
        return true;
    });

    for (mem::Addr a = 0; a < 5; ++a)
        ASSERT_TRUE(xbar.trySend(req(0, a)));
    events.run();
    EXPECT_EQ(arrivals, (std::vector<mem::Addr>{0, 1, 2, 3, 4}));
    EXPECT_EQ(xbar.delivered(), 5u);
}

TEST(Crossbar, BackpressureWhenFull)
{
    sim::EventQueue events;
    CrossbarConfig config;
    config.queueCapacity = 2;
    Crossbar xbar(events, config,
                  [](const mem::Request &) { return true; });

    EXPECT_TRUE(xbar.trySend(req(0, 1)));
    EXPECT_TRUE(xbar.trySend(req(0, 2)));
    EXPECT_FALSE(xbar.trySend(req(0, 3)));
    EXPECT_EQ(xbar.queueSize(), 2u);
}

TEST(Crossbar, RetriesOnSinkRejection)
{
    sim::EventQueue events;
    int rejections_left = 3;
    std::vector<sim::Tick> delivered_at;
    CrossbarConfig config;
    config.latency = 4;
    config.retryInterval = 2;
    Crossbar xbar(events, config, [&](const mem::Request &) {
        if (rejections_left > 0) {
            --rejections_left;
            return false;
        }
        delivered_at.push_back(events.now());
        return true;
    });

    ASSERT_TRUE(xbar.trySend(req(0, 0x40)));
    events.run();
    ASSERT_EQ(delivered_at.size(), 1u);
    // First attempt at 4, rejected 3 times, retried every 2 cycles.
    EXPECT_EQ(delivered_at[0], 4u + 3u * 2u);
    EXPECT_EQ(xbar.sinkRejections(), 3u);
}

TEST(Crossbar, HeadOfLineBlocking)
{
    sim::EventQueue events;
    bool accept_first = false;
    std::vector<mem::Addr> arrivals;
    CrossbarConfig config;
    config.latency = 1;
    Crossbar xbar(events, config, [&](const mem::Request &r) {
        if (r.addr == 1 && !accept_first) {
            accept_first = true; // reject once
            return false;
        }
        arrivals.push_back(r.addr);
        return true;
    });

    ASSERT_TRUE(xbar.trySend(req(0, 1)));
    ASSERT_TRUE(xbar.trySend(req(0, 2)));
    events.run();
    // Request 2 must not bypass request 1.
    EXPECT_EQ(arrivals, (std::vector<mem::Addr>{1, 2}));
}

TEST(Crossbar, AcceptsAgainAfterDrain)
{
    sim::EventQueue events;
    CrossbarConfig config;
    config.queueCapacity = 1;
    Crossbar xbar(events, config,
                  [](const mem::Request &) { return true; });

    EXPECT_TRUE(xbar.trySend(req(0, 1)));
    EXPECT_FALSE(xbar.trySend(req(0, 2)));
    events.run();
    EXPECT_TRUE(xbar.trySend(req(0, 2)));
    events.run();
    EXPECT_EQ(xbar.delivered(), 2u);
}

} // namespace
