#include "interconnect/arbiter.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace
{

using namespace mocktails;
using namespace mocktails::interconnect;

mem::Request
req(mem::Addr addr)
{
    return mem::Request{0, addr, 64, mem::Op::Read};
}

struct ArbiterFixture : public ::testing::Test
{
    sim::EventQueue events;
    ArbiterConfig config;
    std::vector<std::pair<std::uint32_t, mem::Addr>> delivered;

    std::unique_ptr<Arbiter>
    make(std::uint32_t ports)
    {
        return std::make_unique<Arbiter>(
            events, config, ports,
            [this](std::uint32_t port, const mem::Request &r) {
                delivered.emplace_back(port, r.addr);
                return true;
            });
    }
};

TEST_F(ArbiterFixture, SinglePortDelivery)
{
    auto arbiter = make(1);
    ASSERT_TRUE(arbiter->trySend(0, req(0x10)));
    ASSERT_TRUE(arbiter->trySend(0, req(0x20)));
    events.run();
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0].second, 0x10u);
    EXPECT_EQ(delivered[1].second, 0x20u);
    EXPECT_TRUE(arbiter->idle());
}

TEST_F(ArbiterFixture, RoundRobinInterleavesPorts)
{
    auto arbiter = make(2);
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(arbiter->trySend(0, req(0x100 + i)));
        ASSERT_TRUE(arbiter->trySend(1, req(0x200 + i)));
    }
    events.run();
    ASSERT_EQ(delivered.size(), 6u);
    // Ports alternate: 0,1,0,1,0,1.
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(delivered[i].first, i % 2) << i;
}

TEST_F(ArbiterFixture, FairnessUnderAsymmetricLoad)
{
    config.queueCapacity = 64;
    auto arbiter = make(2);
    for (int i = 0; i < 40; ++i)
        ASSERT_TRUE(arbiter->trySend(0, req(0x1000 + i)));
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(arbiter->trySend(1, req(0x2000 + i)));
    events.run();
    // The light port is never starved: its requests all complete, and
    // grants alternate while both queues are backlogged.
    EXPECT_EQ(arbiter->grants()[0], 40u);
    EXPECT_EQ(arbiter->grants()[1], 10u);
    EXPECT_EQ(delivered[0].first, 0u);
    EXPECT_EQ(delivered[1].first, 1u);
    EXPECT_EQ(delivered[2].first, 0u);
}

TEST_F(ArbiterFixture, PerPortBackpressure)
{
    config.queueCapacity = 2;
    auto arbiter = make(2);
    ASSERT_TRUE(arbiter->trySend(0, req(1)));
    ASSERT_TRUE(arbiter->trySend(0, req(2)));
    EXPECT_FALSE(arbiter->trySend(0, req(3)));
    // The other port is unaffected.
    EXPECT_TRUE(arbiter->trySend(1, req(4)));
}

TEST_F(ArbiterFixture, LinkLatencyPacesGrants)
{
    config.linkLatency = 10;
    config.cycleTime = 1;
    auto arbiter = make(1);
    std::vector<sim::Tick> times;
    Arbiter paced(events, config, 1,
                  [&](std::uint32_t, const mem::Request &) {
                      times.push_back(events.now());
                      return true;
                  });
    ASSERT_TRUE(paced.trySend(0, req(1)));
    ASSERT_TRUE(paced.trySend(0, req(2)));
    events.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[1] - times[0], 10u);
}

TEST_F(ArbiterFixture, RetriesAfterSinkRejection)
{
    int rejections = 3;
    Arbiter arbiter(events, config, 1,
                    [&](std::uint32_t, const mem::Request &) {
                        if (rejections > 0) {
                            --rejections;
                            return false;
                        }
                        delivered.emplace_back(0, 0);
                        return true;
                    });
    ASSERT_TRUE(arbiter.trySend(0, req(1)));
    events.run();
    EXPECT_EQ(delivered.size(), 1u);
    EXPECT_EQ(arbiter.sinkRejections(), 3u);
}

TEST_F(ArbiterFixture, PriorityPortWinsContention)
{
    config.queueCapacity = 32;
    config.priorities = {1, 0}; // port 1 is urgent
    auto arbiter = make(2);
    for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(arbiter->trySend(0, req(0x1000 + i)));
        ASSERT_TRUE(arbiter->trySend(1, req(0x2000 + i)));
    }
    events.run();
    // All of port 1's requests are granted before any of port 0's.
    ASSERT_EQ(delivered.size(), 40u);
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(delivered[i].first, 1u) << i;
    for (std::size_t i = 20; i < 40; ++i)
        EXPECT_EQ(delivered[i].first, 0u) << i;
}

TEST_F(ArbiterFixture, EqualPrioritiesRoundRobin)
{
    config.priorities = {3, 3};
    auto arbiter = make(2);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(arbiter->trySend(0, req(0x10 + i)));
        ASSERT_TRUE(arbiter->trySend(1, req(0x20 + i)));
    }
    events.run();
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(delivered[i].first, i % 2) << i;
}

TEST_F(ArbiterFixture, LowPriorityProceedsWhenUrgentIdle)
{
    config.priorities = {1, 0};
    auto arbiter = make(2);
    ASSERT_TRUE(arbiter->trySend(0, req(0x99)));
    events.run();
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].first, 0u);
}

TEST_F(ArbiterFixture, BlockedPortDoesNotStarveOthers)
{
    // The sink rejects port 0's destination but accepts port 1's.
    Arbiter arbiter(events, config, 2,
                    [&](std::uint32_t port, const mem::Request &r) {
                        if (port == 0)
                            return false;
                        delivered.emplace_back(port, r.addr);
                        return true;
                    });
    ASSERT_TRUE(arbiter.trySend(0, req(1)));
    ASSERT_TRUE(arbiter.trySend(1, req(2)));
    events.runUntil(100);
    // Port 1 got through even though port 0 is permanently blocked.
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].first, 1u);
}

TEST_F(ArbiterFixture, PropertyConservationUnderRandomRejection)
{
    // Random transient sink rejections: every request is still
    // delivered exactly once and per-port order is preserved.
    util::Rng rng(77);
    config.queueCapacity = 4;
    Arbiter arbiter(events, config, 3,
                    [&](std::uint32_t port, const mem::Request &r) {
                        if (rng.chance(0.4))
                            return false; // transient downstream stall
                        delivered.emplace_back(port, r.addr);
                        return true;
                    });

    // Feed each port a numbered stream, retrying on backpressure.
    std::vector<std::uint32_t> sent(3, 0);
    constexpr std::uint32_t per_port = 50;
    std::function<void()> feeder = [&] {
        bool all_done = true;
        for (std::uint32_t p = 0; p < 3; ++p) {
            while (sent[p] < per_port &&
                   arbiter.trySend(p, req(p * 1000 + sent[p]))) {
                ++sent[p];
            }
            all_done &= sent[p] == per_port;
        }
        if (!all_done)
            events.scheduleIn(3, feeder);
    };
    feeder();
    events.run();

    ASSERT_EQ(delivered.size(), 3u * per_port);
    std::vector<mem::Addr> last(3, 0);
    std::vector<std::uint32_t> counts(3, 0);
    for (const auto &[port, addr] : delivered) {
        ++counts[port];
        if (addr != port * 1000)
            EXPECT_GT(addr, last[port]); // strictly increasing
        last[port] = addr;
    }
    for (std::uint32_t p = 0; p < 3; ++p)
        EXPECT_EQ(counts[p], per_port);
}

} // namespace
