#!/bin/sh
# CLI-level tests for profile_tool, driven from CTest.
#
# Usage: test_cli.sh <profile_tool> <mode>
#   unknown      unknown subcommand exits non-zero with usage on stderr
#   serve-fetch  loopback fetch reproduces the same CSV bytes as a
#                local synth + export of the same profile and seed,
#                over both the blocking and the --mux client path
set -eu

TOOL=$1
MODE=$2

WORK=$(mktemp -d "${TMPDIR:-/tmp}/mocktails_cli.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM
cd "$WORK"

case "$MODE" in
unknown)
    rc=0
    "$TOOL" frobnicate 2>err.txt >out.txt || rc=$?
    if [ "$rc" -eq 0 ]; then
        echo "FAIL: unknown command exited 0" >&2
        exit 1
    fi
    grep -q "unknown command 'frobnicate'" err.txt || {
        echo "FAIL: missing unknown-command diagnostic" >&2
        cat err.txt >&2
        exit 1
    }
    grep -q "^usage:" err.txt || {
        echo "FAIL: usage not printed to stderr" >&2
        exit 1
    }
    # A known command with bad arity also fails, with a different note.
    rc=0
    "$TOOL" synth 2>err2.txt >out2.txt || rc=$?
    [ "$rc" -ne 0 ] || { echo "FAIL: bad arity exited 0" >&2; exit 1; }
    grep -q "wrong arguments for 'synth'" err2.txt || {
        echo "FAIL: missing wrong-arity diagnostic" >&2
        exit 1
    }
    echo "PASS unknown-command handling"
    ;;

serve-fetch)
    SEED=2026
    "$TOOL" generate HEVC1 2000 t.mkt >/dev/null
    "$TOOL" profile t.mkt p.mkp >/dev/null
    "$TOOL" synth p.mkp local.mkt "$SEED" >/dev/null
    "$TOOL" export local.mkt local.csv >/dev/null

    "$TOOL" serve p.mkp --port 0 --port-file port.txt --once 2 \
        >serve.log 2>&1 &
    SERVER=$!

    # Wait for the server to publish its ephemeral port.
    i=0
    while [ ! -s port.txt ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: server never wrote the port file" >&2
            cat serve.log >&2 || true
            kill "$SERVER" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
    PORT=$(cat port.txt)

    "$TOOL" fetch "127.0.0.1:$PORT" p.mkp remote.csv "$SEED" 100 \
        >/dev/null
    "$TOOL" fetch "127.0.0.1:$PORT" p.mkp muxed.csv "$SEED" 100 \
        --mux >/dev/null

    # --once 2 makes the server exit on its own after both fetches.
    wait "$SERVER"

    cmp local.csv remote.csv || {
        echo "FAIL: fetched CSV differs from local synth" >&2
        exit 1
    }
    cmp local.csv muxed.csv || {
        echo "FAIL: --mux fetch differs from the blocking path" >&2
        exit 1
    }
    echo "PASS serve/fetch loopback round trip (blocking + mux)"
    ;;

*)
    echo "unknown test mode '$MODE'" >&2
    exit 1
    ;;
esac
