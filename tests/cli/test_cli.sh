#!/bin/sh
# CLI-level tests for profile_tool, driven from CTest.
#
# Usage: test_cli.sh <profile_tool> <mode> [scenario_dir]
#   unknown      unknown subcommand exits non-zero with usage on stderr
#   serve-fetch  loopback fetch reproduces the same CSV bytes as a
#                local synth + export of the same profile and seed,
#                over both the blocking and the --mux client path
#   scenario     scenario list/run over the shipped example specs,
#                thread-count determinism of the merged stream,
#                unknown-flag suggestions, and a served scenario id
#                fetched with --mux matching the in-process merge
#   record-replay  record a --mux scenario fetch with serve --record,
#                export it to JSONL, replay it against a fresh server
#                (byte-identical, exit 0), prove --inject-mismatch is
#                caught (exit 4), and query live counters with stats
#   sampling     reduce a profile to its representatives, serve the
#                reduced .mkp over both client paths (byte-stable
#                against a local synth), run validate --sampled with
#                --check-bounds, and check unknown-flag suggestions on
#                build/validate/serve/fetch/replay (exit 2)
set -eu

TOOL=$1
MODE=$2
SCENARIOS=${3:-}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/mocktails_cli.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM
cd "$WORK"

case "$MODE" in
unknown)
    rc=0
    "$TOOL" frobnicate 2>err.txt >out.txt || rc=$?
    if [ "$rc" -eq 0 ]; then
        echo "FAIL: unknown command exited 0" >&2
        exit 1
    fi
    grep -q "unknown command 'frobnicate'" err.txt || {
        echo "FAIL: missing unknown-command diagnostic" >&2
        cat err.txt >&2
        exit 1
    }
    grep -q "^usage:" err.txt || {
        echo "FAIL: usage not printed to stderr" >&2
        exit 1
    }
    # A known command with bad arity also fails, with a different note.
    rc=0
    "$TOOL" synth 2>err2.txt >out2.txt || rc=$?
    [ "$rc" -ne 0 ] || { echo "FAIL: bad arity exited 0" >&2; exit 1; }
    grep -q "wrong arguments for 'synth'" err2.txt || {
        echo "FAIL: missing wrong-arity diagnostic" >&2
        exit 1
    }
    echo "PASS unknown-command handling"
    ;;

serve-fetch)
    SEED=2026
    "$TOOL" generate HEVC1 2000 t.mkt >/dev/null
    "$TOOL" profile t.mkt p.mkp >/dev/null
    "$TOOL" synth p.mkp local.mkt "$SEED" >/dev/null
    "$TOOL" export local.mkt local.csv >/dev/null

    "$TOOL" serve p.mkp --port 0 --port-file port.txt --once 2 \
        >serve.log 2>&1 &
    SERVER=$!

    # Wait for the server to publish its ephemeral port.
    i=0
    while [ ! -s port.txt ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: server never wrote the port file" >&2
            cat serve.log >&2 || true
            kill "$SERVER" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
    PORT=$(cat port.txt)

    "$TOOL" fetch "127.0.0.1:$PORT" p.mkp remote.csv "$SEED" 100 \
        >/dev/null
    "$TOOL" fetch "127.0.0.1:$PORT" p.mkp muxed.csv "$SEED" 100 \
        --mux >/dev/null

    # --once 2 makes the server exit on its own after both fetches.
    wait "$SERVER"

    cmp local.csv remote.csv || {
        echo "FAIL: fetched CSV differs from local synth" >&2
        exit 1
    }
    cmp local.csv muxed.csv || {
        echo "FAIL: --mux fetch differs from the blocking path" >&2
        exit 1
    }
    echo "PASS serve/fetch loopback round trip (blocking + mux)"
    ;;

scenario)
    [ -n "$SCENARIOS" ] || {
        echo "FAIL: scenario mode needs the examples/scenarios dir" >&2
        exit 1
    }

    # Every shipped example spec parses and lists its devices.
    for scn in phone-soc dma-stress npu-gemm; do
        "$TOOL" scenario list "$SCENARIOS/$scn.scn" >list.txt
        grep -q "scenario $scn" list.txt || {
            echo "FAIL: scenario list missing '$scn'" >&2
            cat list.txt >&2
            exit 1
        }
        grep -q "serve id: scenario:$scn" list.txt || {
            echo "FAIL: scenario list missing serve id for '$scn'" >&2
            exit 1
        }
    done
    # Bare `scenario list` prints the generator inventory.
    "$TOOL" scenario list >inventory.txt
    grep -q "DMA-Copy" inventory.txt && grep -q "NPU-GEMM" inventory.txt || {
        echo "FAIL: generator inventory incomplete" >&2
        exit 1
    }

    # The acceptance-criterion run: a per-device + global JSON report.
    "$TOOL" scenario run "$SCENARIOS/phone-soc.scn" \
        --report-json report.json --report-md report.md \
        --merged-out merged1.csv >run.txt
    grep -q '"name":"phone-soc"' report.json || {
        echo "FAIL: report JSON missing scenario name" >&2
        exit 1
    }
    grep -q '"slowdown"' report.json || {
        echo "FAIL: report JSON missing slowdown" >&2
        exit 1
    }
    grep -q '| device |' report.md || {
        echo "FAIL: markdown report missing device table" >&2
        exit 1
    }
    # Bare --report-json prints JSON to stdout.
    "$TOOL" scenario run "$SCENARIOS/phone-soc.scn" --skip-isolated \
        --report-json >stdout.json
    grep -q '"devices"' stdout.json || {
        echo "FAIL: --report-json (stdout) emitted no JSON" >&2
        exit 1
    }

    # Determinism: --threads 1 and 4 produce identical merged bytes.
    "$TOOL" --threads 4 scenario run "$SCENARIOS/phone-soc.scn" \
        --skip-isolated --merged-out merged4.csv >/dev/null
    cmp merged1.csv merged4.csv || {
        echo "FAIL: merged stream differs across thread counts" >&2
        exit 1
    }

    # Unknown flags fail with a close-match suggestion.
    rc=0
    "$TOOL" scenario run "$SCENARIOS/phone-soc.scn" --report-jsn \
        2>flag.txt >/dev/null || rc=$?
    [ "$rc" -eq 2 ] || {
        echo "FAIL: unknown scenario flag exited $rc, want 2" >&2
        exit 1
    }
    grep -q "unknown scenario flag '--report-jsn'" flag.txt &&
        grep -q "did you mean '--report-json'?" flag.txt || {
        echo "FAIL: missing unknown-flag suggestion" >&2
        cat flag.txt >&2
        exit 1
    }
    rc=0
    "$TOOL" scenario frobnicate 2>sub.txt >/dev/null || rc=$?
    [ "$rc" -eq 2 ] || {
        echo "FAIL: unknown scenario subcommand exited $rc, want 2" >&2
        exit 1
    }
    grep -q "unknown scenario subcommand 'frobnicate'" sub.txt || {
        echo "FAIL: missing unknown-subcommand diagnostic" >&2
        exit 1
    }

    # Serve the spec and fetch the merged scenario id over --mux: the
    # bytes must match the in-process engine's merged stream. A
    # composed --mux fetch uses two connections (the blocking probe
    # plus the multiplexed channels), so --once 3 covers both fetches.
    "$TOOL" serve "$SCENARIOS/phone-soc.scn" --port 0 \
        --port-file port.txt --once 3 >serve.log 2>&1 &
    SERVER=$!
    i=0
    while [ ! -s port.txt ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: server never wrote the port file" >&2
            cat serve.log >&2 || true
            kill "$SERVER" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
    PORT=$(cat port.txt)
    "$TOOL" fetch "127.0.0.1:$PORT" scenario:phone-soc fetched.csv \
        1 100 --mux >/dev/null
    "$TOOL" fetch "127.0.0.1:$PORT" scenario:phone-soc blocking.csv \
        >/dev/null
    wait "$SERVER"
    cmp merged1.csv fetched.csv || {
        echo "FAIL: --mux scenario fetch differs from scenario run" >&2
        exit 1
    }
    cmp merged1.csv blocking.csv || {
        echo "FAIL: blocking scenario fetch differs" >&2
        exit 1
    }
    echo "PASS scenario CLI (list, run, determinism, serve/fetch)"
    ;;

record-replay)
    [ -n "$SCENARIOS" ] || {
        echo "FAIL: record-replay mode needs the scenarios dir" >&2
        exit 1
    }

    # Helper: serve the scenario, wait for the port file, remember pid.
    start_server() {
        rm -f port.txt
        # shellcheck disable=SC2086
        "$TOOL" serve "$SCENARIOS/phone-soc.scn" --port 0 \
            --port-file port.txt $1 >"$2" 2>&1 &
        SERVER=$!
        i=0
        while [ ! -s port.txt ]; do
            i=$((i + 1))
            if [ "$i" -gt 100 ]; then
                echo "FAIL: server never wrote the port file" >&2
                cat "$2" >&2 || true
                kill "$SERVER" 2>/dev/null || true
                exit 1
            fi
            sleep 0.1
        done
        PORT=$(cat port.txt)
    }

    # 1. Record a composed --mux fetch (probe + mux = 2 connections).
    start_server "--once 2 --record rec.mksr" serve_rec.log
    "$TOOL" fetch "127.0.0.1:$PORT" scenario:phone-soc fetched.csv \
        1 100 --mux >/dev/null
    wait "$SERVER"
    grep -q "recorded .* frames .* -> rec.mksr" serve_rec.log || {
        echo "FAIL: serve --record printed no recording summary" >&2
        cat serve_rec.log >&2
        exit 1
    }
    [ -s rec.mksr ] || {
        echo "FAIL: recording file missing or empty" >&2
        exit 1
    }

    # 2. Lossless JSONL export needs no server.
    "$TOOL" replay rec.mksr --export-jsonl rec.jsonl >/dev/null
    grep -q '"type":"Hello"' rec.jsonl &&
        grep -q '"dir":"s2c"' rec.jsonl || {
        echo "FAIL: JSONL export missing expected frames" >&2
        head -5 rec.jsonl >&2 || true
        exit 1
    }

    # 3. Live counters over the wire, then a byte-identical replay
    #    (1 stats connection + 2 replayed connections = --once 3).
    start_server "--once 3" serve_replay.log
    "$TOOL" stats "127.0.0.1:$PORT" >stats.txt
    grep -q "^serve.connections_accepted " stats.txt &&
        grep -q "^store.resident_profiles " stats.txt &&
        grep -q "^recorder.enabled " stats.txt || {
        echo "FAIL: stats output missing expected counters" >&2
        cat stats.txt >&2
        exit 1
    }
    "$TOOL" replay rec.mksr "127.0.0.1:$PORT" >replay.txt
    wait "$SERVER"
    grep -q "byte-identical" replay.txt || {
        echo "FAIL: replay did not report byte-identical responses" >&2
        cat replay.txt >&2
        exit 1
    }

    # 4. A corrupted recording must be detected, with exit code 4.
    start_server "--once 2" serve_bad.log
    rc=0
    "$TOOL" replay rec.mksr "127.0.0.1:$PORT" --inject-mismatch \
        >bad.txt 2>bad_err.txt || rc=$?
    wait "$SERVER"
    [ "$rc" -eq 4 ] || {
        echo "FAIL: injected mismatch exited $rc, want 4" >&2
        cat bad.txt bad_err.txt >&2
        exit 1
    }
    grep -q "mismatch" bad_err.txt || {
        echo "FAIL: mismatch diagnostic missing" >&2
        cat bad_err.txt >&2
        exit 1
    }
    echo "PASS record/replay loopback (record, export, replay, stats)"
    ;;

sampling)
    "$TOOL" generate FBC-Linear1 20000 t.mkt >/dev/null
    "$TOOL" profile t.mkt p.mkp 50000 >/dev/null

    # 1. Reduce to representatives; the output is a loadable .mkp.
    "$TOOL" reduce p.mkp red.mkp --k 3 >reduce.txt
    grep -q "reduced .* leaves -> 3 representatives" reduce.txt || {
        echo "FAIL: reduce printed no selection summary" >&2
        cat reduce.txt >&2
        exit 1
    }
    "$TOOL" info red.mkp >info.txt
    grep -q "reduced: *3 representatives standing in for 20000" \
        info.txt || {
        echo "FAIL: info does not recognise the weights trailer" >&2
        cat info.txt >&2
        exit 1
    }

    # 2. Serve the reduced profile; both client paths reproduce the
    #    local synthesis byte-for-byte.
    SEED=7
    "$TOOL" synth red.mkp local.mkt "$SEED" >/dev/null
    "$TOOL" export local.mkt local.csv >/dev/null
    "$TOOL" serve red.mkp --port 0 --port-file port.txt --once 2 \
        >serve.log 2>&1 &
    SERVER=$!
    i=0
    while [ ! -s port.txt ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: server never wrote the port file" >&2
            cat serve.log >&2 || true
            kill "$SERVER" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
    PORT=$(cat port.txt)
    "$TOOL" fetch "127.0.0.1:$PORT" red.mkp remote.csv "$SEED" 100 \
        >/dev/null
    "$TOOL" fetch "127.0.0.1:$PORT" red.mkp muxed.csv "$SEED" 100 \
        --mux >/dev/null
    wait "$SERVER"
    cmp local.csv remote.csv || {
        echo "FAIL: served reduced profile differs from local synth" >&2
        exit 1
    }
    cmp local.csv muxed.csv || {
        echo "FAIL: --mux fetch of reduced profile differs" >&2
        exit 1
    }

    # 3. Sampled validation: runs, reports the sampling block, and the
    #    extrapolation stays within the predicted bound of full
    #    validation. Exit 0 (pass) and 3 (fidelity fail) are both fine
    #    here; 5 would mean the bound or speedup check failed.
    rc=0
    "$TOOL" --report-json sampled.json validate t.mkt p.mkp \
        --sampled=3 --check-bounds >sampled.txt || rc=$?
    { [ "$rc" -eq 0 ] || [ "$rc" -eq 3 ]; } || {
        echo "FAIL: validate --sampled exited $rc" >&2
        cat sampled.txt >&2
        exit 1
    }
    grep -q "sampling: k=3" sampled.txt || {
        echo "FAIL: sampled report missing the sampling summary" >&2
        cat sampled.txt >&2
        exit 1
    }
    grep -q "bounds check: .* -> PASS" sampled.txt || {
        echo "FAIL: sampled metrics left the predicted bound" >&2
        cat sampled.txt >&2
        exit 1
    }
    grep -q '"sampling":{' sampled.json &&
        grep -q '"error_bound_percent"' sampled.json || {
        echo "FAIL: JSON report missing the sampling block" >&2
        exit 1
    }
    # --check-bounds without --sampled is a flag error.
    rc=0
    "$TOOL" validate t.mkt p.mkp --check-bounds 2>/dev/null \
        >/dev/null || rc=$?
    [ "$rc" -eq 2 ] || {
        echo "FAIL: --check-bounds without --sampled exited $rc" >&2
        exit 1
    }

    # 4. Unknown-flag suggestions across the other subcommands.
    check_suggestion() {
        # $1 command word, $2 bad flag, $3 suggested flag, $@ command
        cmd=$1
        bad=$2
        want=$3
        shift 3
        rc=0
        "$@" 2>flag.txt >/dev/null || rc=$?
        [ "$rc" -eq 2 ] || {
            echo "FAIL: unknown $cmd flag exited $rc, want 2" >&2
            cat flag.txt >&2
            exit 1
        }
        grep -q "unknown $cmd flag '$bad'" flag.txt &&
            grep -q "did you mean '$want'?" flag.txt || {
            echo "FAIL: missing $cmd suggestion for $bad" >&2
            cat flag.txt >&2
            exit 1
        }
    }
    check_suggestion build --spill-dri --spill-dir \
        "$TOOL" build t.mkt out.mkp --spill-dri
    check_suggestion validate --sampld --sampled \
        "$TOOL" validate t.mkt p.mkp --sampld
    check_suggestion serve --prt --port \
        "$TOOL" serve p.mkp --prt 0
    check_suggestion fetch --muxx --mux \
        "$TOOL" fetch 127.0.0.1:1 p.mkp out.csv --muxx
    check_suggestion replay --timng --timing \
        "$TOOL" replay rec.mksr --timng
    echo "PASS sampling CLI (reduce, serve, validate --sampled, flags)"
    ;;

*)
    echo "unknown test mode '$MODE'" >&2
    exit 1
    ;;
esac
