#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace
{

using namespace mocktails;
using telemetry::FixedHistogram;
using telemetry::MetricsRegistry;

TEST(MetricsRegistry, FindOrCreateReturnsStableIdentity)
{
    MetricsRegistry registry;
    telemetry::Counter &a = registry.counter("a");
    telemetry::Counter &b = registry.counter("b");
    EXPECT_NE(&a, &b);
    EXPECT_EQ(&a, &registry.counter("a"));

    telemetry::Gauge &g = registry.gauge("a"); // separate namespace
    EXPECT_EQ(&g, &registry.gauge("a"));

    FixedHistogram &h = registry.histogram("a", {10});
    EXPECT_EQ(&h, &registry.histogram("a", {99, 100}));
    // The first registration fixed the edges; later edges are ignored.
    EXPECT_EQ(h.edges(), (std::vector<std::int64_t>{10}));
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles)
{
    MetricsRegistry registry;
    telemetry::Counter &c = registry.counter("events");
    c.add(7);
    registry.gauge("level").set(-3);
    registry.histogram("dist", {5}).record(1);

    registry.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(&c, &registry.counter("events"));
    EXPECT_EQ(registry.gauge("level").value(), 0);
    EXPECT_EQ(registry.histogram("dist", {5}).total(), 0u);
}

TEST(Counter, AddAccumulatesAcrossShards)
{
    telemetry::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset)
{
    telemetry::Gauge g;
    g.set(-5);
    EXPECT_EQ(g.value(), -5);
    g.add(15);
    EXPECT_EQ(g.value(), 10);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(FixedHistogram, BucketEdgesAreExclusiveUpperBounds)
{
    // Two edges -> three buckets: (-inf,10), [10,20), [20,+inf).
    FixedHistogram h({10, 20});
    EXPECT_EQ(h.buckets(), 3u);
    EXPECT_EQ(h.bucketFor(-100), 0u); // underflow clamps to bucket 0
    EXPECT_EQ(h.bucketFor(0), 0u);
    EXPECT_EQ(h.bucketFor(9), 0u);
    EXPECT_EQ(h.bucketFor(10), 1u); // exact edge -> next bucket
    EXPECT_EQ(h.bucketFor(19), 1u);
    EXPECT_EQ(h.bucketFor(20), 2u);
    EXPECT_EQ(h.bucketFor(1000000), 2u); // overflow -> final bucket
}

TEST(FixedHistogram, RecordCountsTotalsAndMean)
{
    FixedHistogram h({10, 20});
    h.record(5);
    h.record(10);
    h.record(15, 2);
    h.record(25);
    EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{1, 3, 1}));
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), (5.0 + 10.0 + 15.0 + 15.0 + 25.0) / 5.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(FixedHistogram, EdgeBuilders)
{
    // n evenly spaced edges stepping up from lo, ending at hi; the
    // final bucket [40, inf) catches overflow.
    EXPECT_EQ(FixedHistogram::linearEdges(0, 40, 4),
              (std::vector<std::int64_t>{10, 20, 30, 40}));
    EXPECT_EQ(FixedHistogram::exponentialEdges(1, 16),
              (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
}

TEST(MetricsRegistry, SnapshotIsSortedByName)
{
    MetricsRegistry registry;
    registry.counter("zebra").add(1);
    registry.counter("aardvark").add(2);
    registry.gauge("middle").set(3);
    registry.histogram("dist", {4}).record(1);

    const telemetry::Snapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "aardvark");
    EXPECT_EQ(snap.counters[0].value, 2u);
    EXPECT_EQ(snap.counters[1].name, "zebra");
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, 3);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].counts,
              (std::vector<std::uint64_t>{1, 0}));
}

TEST(MetricsRegistry, SnapshotRacesWithConcurrentIncrements)
{
    MetricsRegistry registry;
    telemetry::Counter &hits = registry.counter("hits");
    FixedHistogram &dist = registry.histogram(
        "dist", FixedHistogram::linearEdges(0, 64, 8));

    constexpr int kTasks = 64;
    constexpr int kAddsPerTask = 1000;
    std::atomic<int> done{0};
    {
        util::ThreadPool pool(4);
        for (int t = 0; t < kTasks; ++t) {
            pool.submit([&, t] {
                for (int i = 0; i < kAddsPerTask; ++i) {
                    hits.add();
                    dist.record((t + i) % 64);
                }
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Snapshot while the workers are mid-flight: totals must be
        // monotone and never exceed the final count (no torn reads,
        // no crashes).
        std::uint64_t last = 0;
        while (done.load(std::memory_order_relaxed) < kTasks) {
            const telemetry::Snapshot snap = registry.snapshot();
            ASSERT_EQ(snap.counters.size(), 1u);
            EXPECT_GE(snap.counters[0].value, last);
            EXPECT_LE(snap.counters[0].value,
                      static_cast<std::uint64_t>(kTasks) *
                          kAddsPerTask);
            last = snap.counters[0].value;
        }
    } // pool drains and joins here

    EXPECT_EQ(hits.value(),
              static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
    EXPECT_EQ(dist.total(),
              static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
}

} // namespace
