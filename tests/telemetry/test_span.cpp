#include "telemetry/span.hpp"

#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"

namespace
{

using namespace mocktails;
using telemetry::MetricsRegistry;
using telemetry::Snapshot;
using telemetry::Span;

/** Spans only collect while telemetry is enabled. */
class SpanTest : public ::testing::Test
{
  protected:
    void SetUp() override { telemetry::setEnabled(true); }
    void TearDown() override { telemetry::setEnabled(false); }
};

TEST_F(SpanTest, RecordsNestingAsParentChild)
{
    MetricsRegistry registry;
    {
        Span outer(registry, "outer");
        {
            Span inner(registry, "inner");
        }
        {
            Span sibling(registry, "sibling");
        }
    }
    const Snapshot snap = registry.snapshot();
    ASSERT_EQ(snap.spans.size(), 3u);
    // Start order: outer first, then its two children.
    EXPECT_EQ(snap.spans[0].name, "outer");
    EXPECT_EQ(snap.spans[0].parent, -1);
    EXPECT_EQ(snap.spans[0].depth, 0);
    EXPECT_EQ(snap.spans[1].name, "inner");
    EXPECT_EQ(snap.spans[1].parent, 0);
    EXPECT_EQ(snap.spans[1].depth, 1);
    EXPECT_EQ(snap.spans[2].name, "sibling");
    EXPECT_EQ(snap.spans[2].parent, 0);
    EXPECT_EQ(snap.spans[2].depth, 1);
    for (const auto &s : snap.spans)
        EXPECT_GE(s.durationNs, 0);
}

TEST_F(SpanTest, SnapshotSkipsOpenSpans)
{
    MetricsRegistry registry;
    Span open(registry, "still-running");
    {
        Span closed(registry, "closed-child");
    }
    const Snapshot snap = registry.snapshot();
    // Only the finished child appears; its open parent is filtered
    // and the child is re-rooted rather than pointing at a hole.
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_EQ(snap.spans[0].name, "closed-child");
    EXPECT_EQ(snap.spans[0].parent, -1);
}

TEST_F(SpanTest, ScopedTimerFoldsIntoCounters)
{
    MetricsRegistry registry;
    for (int i = 0; i < 3; ++i)
        telemetry::ScopedTimer timer(registry, "work");
    EXPECT_EQ(registry.counter("work.calls").value(), 3u);
    // Durations can legitimately round to 0 ns; just require sanity.
    EXPECT_GE(registry.counter("work.ns").value(), 0u);
}

TEST(SpanDisabled, IsANoOp)
{
    ASSERT_FALSE(telemetry::enabled());
    MetricsRegistry registry;
    {
        Span span(registry, "ignored");
        telemetry::ScopedTimer timer(registry, "ignored");
    }
    const Snapshot snap = registry.snapshot();
    EXPECT_TRUE(snap.spans.empty());
    EXPECT_TRUE(snap.counters.empty());
}

} // namespace
