#include "telemetry/exporter.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/metrics.hpp"

namespace
{

using namespace mocktails;
using telemetry::CsvExporter;
using telemetry::ExportOptions;
using telemetry::JsonlExporter;
using telemetry::Snapshot;

/** A fixed snapshot covering every record type. */
Snapshot
goldenSnapshot()
{
    Snapshot snap;
    snap.wallUnixNs = 1234567890;
    snap.counters.push_back({"partition.leaves", 42});
    snap.counters.push_back({"weird\"name", 1});
    snap.gauges.push_back({"cache.footprint_blocks", -3});
    snap.histograms.push_back(
        {"synthesis.merge_depth", {1, 2, 4}, {5, 0, 1, 2}, 8, 1.5});
    snap.spans.push_back({"profile.build", -1, 0, 100, 900});
    snap.spans.push_back({"profile.fit", 0, 1, 200, 300});
    return snap;
}

TEST(JsonlExporter, GoldenRenderWithoutTimes)
{
    ExportOptions options;
    options.includeTimes = false;
    std::ostringstream out;
    JsonlExporter::render(goldenSnapshot(), 7, options, out);
    EXPECT_EQ(
        out.str(),
        "{\"type\":\"snapshot\",\"seq\":7}\n"
        "{\"type\":\"counter\",\"seq\":7,"
        "\"name\":\"partition.leaves\",\"value\":42}\n"
        "{\"type\":\"counter\",\"seq\":7,"
        "\"name\":\"weird\\\"name\",\"value\":1}\n"
        "{\"type\":\"gauge\",\"seq\":7,"
        "\"name\":\"cache.footprint_blocks\",\"value\":-3}\n"
        "{\"type\":\"histogram\",\"seq\":7,"
        "\"name\":\"synthesis.merge_depth\",\"edges\":[1,2,4],"
        "\"counts\":[5,0,1,2],\"total\":8,\"mean\":1.5}\n"
        "{\"type\":\"span\",\"seq\":7,\"name\":\"profile.build\","
        "\"parent\":-1,\"depth\":0}\n"
        "{\"type\":\"span\",\"seq\":7,\"name\":\"profile.fit\","
        "\"parent\":0,\"depth\":1}\n");
}

TEST(JsonlExporter, TimesAppearWhenEnabled)
{
    std::ostringstream out;
    JsonlExporter::render(goldenSnapshot(), 0, ExportOptions{}, out);
    EXPECT_NE(out.str().find("\"unix_ns\":1234567890"),
              std::string::npos);
    EXPECT_NE(out.str().find("\"start_ns\":100"), std::string::npos);
    EXPECT_NE(out.str().find("\"duration_ns\":900"),
              std::string::npos);
}

TEST(CsvExporter, GoldenRenderWithoutTimes)
{
    ExportOptions options;
    options.includeTimes = false;
    std::ostringstream out;
    CsvExporter::render(goldenSnapshot(), 2, options, true, out);
    EXPECT_EQ(out.str(),
              "seq,kind,name,bucket,value\n"
              "2,counter,partition.leaves,,42\n"
              "2,counter,\"weird\"\"name\",,1\n"
              "2,gauge,cache.footprint_blocks,,-3\n"
              "2,histogram,synthesis.merge_depth,1,5\n"
              "2,histogram,synthesis.merge_depth,2,0\n"
              "2,histogram,synthesis.merge_depth,4,1\n"
              "2,histogram,synthesis.merge_depth,inf,2\n"
              "2,span,profile.build,0,0\n"
              "2,span,profile.fit,1,0\n");
}

TEST(CsvExporter, HeaderOnlyOnFreshFile)
{
    const std::string path =
        testing::TempDir() + "telemetry_exporter_test.csv";
    std::remove(path.c_str());
    {
        CsvExporter exporter(path);
        ASSERT_TRUE(exporter.ok());
        exporter.write(goldenSnapshot());
    }
    {
        // A second exporter appending to the same file must not
        // repeat the header, and its seq restarts at 0 per process.
        CsvExporter exporter(path);
        exporter.write(goldenSnapshot());
    }
    std::ifstream in(path);
    std::string line;
    std::size_t headers = 0, lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        if (line == "seq,kind,name,bucket,value")
            ++headers;
    }
    EXPECT_EQ(headers, 1u);
    // 1 header + 2 x (1 snapshot + 2 counters + 1 gauge + 4 histogram
    // buckets + 2 spans).
    EXPECT_EQ(lines, 1u + 2u * 10u);
    std::remove(path.c_str());
}

TEST(MakeFileExporter, PicksFormatByExtension)
{
    const std::string base = testing::TempDir() + "telemetry_make_";
    const std::string jsonl_path = base + "out.jsonl";
    const std::string csv_path = base + "out.csv";
    std::remove(jsonl_path.c_str());
    std::remove(csv_path.c_str());

    telemetry::makeFileExporter(jsonl_path)->write(goldenSnapshot());
    telemetry::makeFileExporter(csv_path)->write(goldenSnapshot());

    std::ifstream jsonl(jsonl_path), csv(csv_path);
    std::string first;
    std::getline(jsonl, first);
    EXPECT_EQ(first.rfind("{\"type\":\"snapshot\"", 0), 0u);
    std::getline(csv, first);
    EXPECT_EQ(first, "seq,kind,name,bucket,value");
    std::remove(jsonl_path.c_str());
    std::remove(csv_path.c_str());
}

TEST(PeriodicExporter, WritesFinalSnapshotOnStop)
{
    const std::string path =
        testing::TempDir() + "telemetry_periodic_test.jsonl";
    std::remove(path.c_str());
    telemetry::MetricsRegistry registry;
    registry.counter("ticks").add(5);
    {
        telemetry::PeriodicExporter periodic(
            registry, telemetry::makeFileExporter(path),
            std::chrono::milliseconds(3600 * 1000));
        // Interval far in the future: only the stop() snapshot fires.
    }
    std::ifstream in(path);
    std::string all, line;
    while (std::getline(in, line))
        all += line + "\n";
    EXPECT_NE(all.find("\"name\":\"ticks\",\"value\":5"),
              std::string::npos);
    std::remove(path.c_str());
}

} // namespace
